package simnet

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func collector() (Handler, *[][]byte, *sync.Mutex) {
	var mu sync.Mutex
	var got [][]byte
	return func(p Packet) {
		mu.Lock()
		got = append(got, p.Payload)
		mu.Unlock()
	}, &got, &mu
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestSendDeliver(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	h, got, mu := collector()
	if err := n.Attach("a", func(Packet) {}); err != nil {
		t.Fatalf("Attach a: %v", err)
	}
	if err := n.Attach("b", h); err != nil {
		t.Fatalf("Attach b: %v", err)
	}
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*got) == 1 })
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal((*got)[0], []byte("hello")) {
		t.Fatalf("payload = %q", (*got)[0])
	}
}

func TestPayloadCopied(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	h, got, mu := collector()
	n.Attach("a", func(Packet) {})
	n.Attach("b", h)
	buf := []byte("orig")
	if err := n.Send("a", "b", buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	copy(buf, "XXXX") // mutate after send
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*got) == 1 })
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal((*got)[0], []byte("orig")) {
		t.Fatalf("payload mutated in flight: %q", (*got)[0])
	}
}

func TestSendErrors(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	n.Attach("a", func(Packet) {})
	if err := n.Send("ghost", "a", nil); err == nil {
		t.Fatal("Send from unknown node succeeded")
	}
	if err := n.Send("a", "ghost", nil); err == nil {
		t.Fatal("Send to unattached node succeeded")
	}
}

func TestDuplicateAttach(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	if err := n.Attach("a", func(Packet) {}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := n.Attach("a", func(Packet) {}); err == nil {
		t.Fatal("duplicate Attach succeeded")
	}
	if err := n.Attach("b", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestDetach(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	n.Attach("a", func(Packet) {})
	n.Attach("b", func(Packet) {})
	n.Detach("b")
	if n.Attached("b") {
		t.Fatal("b still attached after Detach")
	}
	if err := n.Send("a", "b", nil); err == nil {
		t.Fatal("Send to detached node succeeded")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	h, got, mu := collector()
	n.Attach("a", func(Packet) {})
	n.Attach("b", h)
	n.Partition("a", "b")
	if err := n.Send("a", "b", []byte("x")); err == nil {
		t.Fatal("Send across partition succeeded")
	}
	if err := n.Send("b", "a", []byte("x")); err == nil {
		t.Fatal("partition must be bidirectional")
	}
	n.Heal("a", "b")
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send after Heal: %v", err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*got) == 1 })
}

func TestNATReachability(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	n.Attach("cl1", func(Packet) {})
	n.Attach("cl2", func(Packet) {})
	n.Attach("broker", func(Packet) {})
	n.SetReachable("cl1", "cl2", false)
	if err := n.Send("cl1", "cl2", nil); err == nil {
		t.Fatal("NATed direct send succeeded")
	}
	// One-way: cl2 may still reach cl1, and broker is always reachable.
	if err := n.Send("cl2", "cl1", nil); err != nil {
		t.Fatalf("reverse direction should work: %v", err)
	}
	if err := n.Send("cl1", "broker", nil); err != nil {
		t.Fatalf("broker path should work: %v", err)
	}
	n.SetReachable("cl1", "cl2", true)
	if err := n.Send("cl1", "cl2", nil); err != nil {
		t.Fatalf("Send after restoring reachability: %v", err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	defer n.Close()
	var deliveredAt atomic.Int64
	n.Attach("a", func(Packet) {})
	n.Attach("b", func(Packet) { deliveredAt.Store(time.Now().UnixNano()) })
	n.SetLink("a", "b", LinkProfile{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, func() bool { return deliveredAt.Load() != 0 })
	elapsed := time.Duration(deliveredAt.Load() - start.UnixNano())
	if elapsed < 25*time.Millisecond {
		t.Fatalf("delivery after %v, want >= ~30ms", elapsed)
	}
}

func TestBandwidthModel(t *testing.T) {
	p := LinkProfile{Latency: 10 * time.Millisecond, Bandwidth: 1_000_000}
	if got := p.TransferTime(0); got != 10*time.Millisecond {
		t.Fatalf("TransferTime(0) = %v", got)
	}
	// 1 MB at 1 MB/s = 1 s + 10 ms latency.
	if got := p.TransferTime(1_000_000); got != 1010*time.Millisecond {
		t.Fatalf("TransferTime(1MB) = %v", got)
	}
	inf := LinkProfile{Latency: time.Millisecond}
	if got := inf.TransferTime(1 << 30); got != time.Millisecond {
		t.Fatalf("infinite bandwidth TransferTime = %v", got)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	p := ProfileLAN
	prev := time.Duration(-1)
	for n := 0; n < 1<<20; n = n*2 + 1 {
		d := p.TransferTime(n)
		if d < prev {
			t.Fatalf("TransferTime not monotonic at %d: %v < %v", n, d, prev)
		}
		prev = d
	}
}

func TestLossDeterministicSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		n := NewNetworkSeeded(LinkProfile{Loss: 0.5}, seed)
		defer n.Close()
		n.Attach("a", func(Packet) {})
		n.Attach("b", func(Packet) {})
		for i := 0; i < 200; i++ {
			if err := n.Send("a", "b", []byte("x")); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		n.Close()
		return n.Stats().Dropped
	}
	d1, d2 := run(42), run(42)
	if d1 != d2 {
		t.Fatalf("same seed produced different drop counts: %d vs %d", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("loss 0.5 dropped %d of 200, implausible", d1)
	}
}

func TestTapSeesAllTraffic(t *testing.T) {
	n := NewNetworkSeeded(LinkProfile{Loss: 0.9}, 7)
	defer n.Close()
	n.Attach("a", func(Packet) {})
	n.Attach("b", func(Packet) {})
	var tapped atomic.Int64
	n.AddTap(func(Packet) { tapped.Add(1) })
	for i := 0; i < 50; i++ {
		if err := n.Send("a", "b", []byte("secret")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// The tap observes transmissions even when the wire then drops them.
	if got := tapped.Load(); got != 50 {
		t.Fatalf("tap saw %d packets, want 50", got)
	}
}

func TestStatsCounters(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	n.Attach("a", func(Packet) {})
	n.Attach("b", func(Packet) {})
	payload := []byte("12345")
	for i := 0; i < 10; i++ {
		if err := n.Send("a", "b", payload); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	n.Close() // waits for delivery
	s := n.Stats()
	if s.Sent != 10 || s.Delivered != 10 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Bytes != 50 {
		t.Fatalf("bytes = %d, want 50", s.Bytes)
	}
}

func TestCloseRejectsSends(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	n.Attach("a", func(Packet) {})
	n.Attach("b", func(Packet) {})
	n.Close()
	if err := n.Send("a", "b", nil); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	if err := n.Attach("c", func(Packet) {}); err == nil {
		t.Fatal("Attach after Close succeeded")
	}
	n.Close() // second Close must be a no-op
}

func TestConcurrentSends(t *testing.T) {
	n := NewNetwork(ProfileLocal)
	var count atomic.Int64
	n.Attach("sink", func(Packet) { count.Add(1) })
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		id := NodeID(string(rune('a' + s)))
		if err := n.Attach(id, func(Packet) {}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
		wg.Add(1)
		go func(id NodeID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := n.Send(id, "sink", []byte("m")); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	n.Close()
	if got := count.Load(); got != senders*per {
		t.Fatalf("delivered %d, want %d", got, senders*per)
	}
}
