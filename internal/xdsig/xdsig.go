// Package xdsig implements the XMLdsig-style enveloped signatures the
// security extension uses to protect advertisements (paper §4.1, method
// of Arnedo-Moreno & Herrera-Joancomartí [15]).
//
// In contrast with stock JXTA "signed advertisements" — which wrap the
// original document in opaque Base64 so its type is unrecognizable until
// the signature is processed — the enveloped approach appends a
// <Signature> child to the original document, preserving its type. The
// signature carries a KeyInfo block with the signer's credential (chain),
// giving the network a transparent, authentic key-distribution mechanism:
// whoever can fetch an advertisement automatically obtains the signer's
// certified public key.
package xdsig

import (
	"encoding/base64"
	"errors"
	"fmt"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Element and algorithm identifiers. The URIs are informative labels in
// the spirit of XMLdsig; verification pins them exactly.
const (
	SignatureElement = "Signature"
	c14nMethod       = "jxta-overlay-c14n-v1"
	sigMethod        = "rsa-sha256-pkcs1v15"
	digestMethod     = "sha256"
)

// Errors returned by verification.
var (
	ErrNoSignature    = errors.New("xdsig: document has no signature")
	ErrDigestMismatch = errors.New("xdsig: digest mismatch (document tampered)")
	ErrBadSignature   = errors.New("xdsig: signature value invalid")
	ErrAlgorithm      = errors.New("xdsig: unsupported algorithm")
	ErrNoKeyInfo      = errors.New("xdsig: signature carries no credential")
)

// Sign appends an enveloped signature to doc, signed with kp. The chain
// is the signer's credential followed by any intermediates needed to
// reach a trust anchor (e.g. [clientCred, brokerCred]); chain[0].Key must
// be kp's public key.
//
// Any pre-existing signature is replaced, so re-publishing a modified
// advertisement re-signs it cleanly.
func Sign(doc *xmldoc.Element, kp *keys.KeyPair, chain ...*cred.Credential) error {
	if doc == nil {
		return errors.New("xdsig: nil document")
	}
	if len(chain) == 0 {
		return errors.New("xdsig: signer credential required")
	}
	if !chain[0].Key.Equal(kp.Public()) {
		return errors.New("xdsig: signer credential key does not match signing key")
	}
	doc.RemoveChildren(SignatureElement)

	digest := keys.SHA256(doc.CanonicalSkip(SignatureElement))
	signedInfo := xmldoc.New("SignedInfo", "")
	signedInfo.AddText("CanonicalizationMethod", c14nMethod)
	signedInfo.AddText("SignatureMethod", sigMethod)
	signedInfo.AddText("DigestMethod", digestMethod)
	signedInfo.AddText("DigestValue", base64.StdEncoding.EncodeToString(digest))

	sigValue, err := kp.Sign(signedInfo.Canonical())
	if err != nil {
		return fmt.Errorf("xdsig: %w", err)
	}

	keyInfo := xmldoc.New("KeyInfo", "")
	for _, c := range chain {
		cd, err := c.Document()
		if err != nil {
			return fmt.Errorf("xdsig: credential: %w", err)
		}
		keyInfo.Add(cd)
	}

	sig := xmldoc.New(SignatureElement, "")
	sig.Add(signedInfo)
	sig.AddText("SignatureValue", base64.StdEncoding.EncodeToString(sigValue))
	sig.Add(keyInfo)
	doc.Add(sig)
	return nil
}

// Result reports a successful verification.
type Result struct {
	// Chain is the credential chain from the KeyInfo block, leaf first.
	Chain []*cred.Credential
	// Signer is the leaf credential (convenience accessor).
	Signer *cred.Credential
}

// Verify checks the enveloped signature structurally: the digest must
// match the document body and the signature value must verify under the
// leaf credential's key. It does NOT establish trust in the credential
// chain — use VerifyTrusted for the full check.
func Verify(doc *xmldoc.Element) (*Result, error) {
	if doc == nil {
		return nil, errors.New("xdsig: nil document")
	}
	sig := doc.Child(SignatureElement)
	if sig == nil {
		return nil, ErrNoSignature
	}
	signedInfo := sig.Child("SignedInfo")
	if signedInfo == nil {
		return nil, ErrNoSignature
	}
	if signedInfo.ChildText("CanonicalizationMethod") != c14nMethod ||
		signedInfo.ChildText("SignatureMethod") != sigMethod ||
		signedInfo.ChildText("DigestMethod") != digestMethod {
		return nil, ErrAlgorithm
	}

	// Digest covers the document with every Signature element detached.
	// CanonicalSkip serializes that form directly — no deep copy of the
	// advertisement per verification.
	wantDigest, err := base64.StdEncoding.DecodeString(signedInfo.ChildText("DigestValue"))
	if err != nil {
		return nil, fmt.Errorf("xdsig: digest value: %w", err)
	}
	if !keys.ConstantTimeEqual(keys.SHA256(doc.CanonicalSkip(SignatureElement)), wantDigest) {
		return nil, ErrDigestMismatch
	}

	keyInfo := sig.Child("KeyInfo")
	if keyInfo == nil {
		return nil, ErrNoKeyInfo
	}
	var chain []*cred.Credential
	for _, cd := range keyInfo.ChildrenNamed(cred.ElementName) {
		c, err := cred.Parse(cd)
		if err != nil {
			return nil, fmt.Errorf("xdsig: keyinfo credential: %w", err)
		}
		chain = append(chain, c)
	}
	if len(chain) == 0 {
		return nil, ErrNoKeyInfo
	}

	sigValue, err := base64.StdEncoding.DecodeString(sig.ChildText("SignatureValue"))
	if err != nil {
		return nil, fmt.Errorf("xdsig: signature value: %w", err)
	}
	if err := chain[0].Key.Verify(signedInfo.Canonical(), sigValue); err != nil {
		return nil, ErrBadSignature
	}
	return &Result{Chain: chain, Signer: chain[0]}, nil
}

// VerifyTrusted performs the complete check a receiving peer runs on a
// signed advertisement: structural signature validity, credential chain
// trust up to an anchor in ts, and the CBID binding between the signer's
// claimed peer ID and its key.
func VerifyTrusted(doc *xmldoc.Element, ts *cred.TrustStore, now time.Time) (*Result, error) {
	res, err := Verify(doc)
	if err != nil {
		return nil, err
	}
	if err := ts.VerifyChain(now, res.Chain...); err != nil {
		return nil, fmt.Errorf("xdsig: %w", err)
	}
	if keys.IsCBID(res.Signer.Subject) {
		if err := res.Signer.VerifyCBID(); err != nil {
			return nil, fmt.Errorf("xdsig: %w", err)
		}
	}
	return res, nil
}

// IsSigned reports whether the document carries a signature element.
func IsSigned(doc *xmldoc.Element) bool {
	return doc != nil && doc.Child(SignatureElement) != nil
}

// StripSignature returns a copy of doc without signature elements, for
// re-signing or digest computation by callers.
func StripSignature(doc *xmldoc.Element) *xmldoc.Element {
	out := doc.Clone()
	out.RemoveChildren(SignatureElement)
	return out
}
