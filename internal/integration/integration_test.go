// Package integration_test exercises the whole stack end-to-end under
// adverse network conditions: real latency, jitter, and packet loss.
// The unit suites run on a zero-latency fabric; these tests confirm the
// middleware's stated behaviours — best-effort messaging, reliable
// request/response ops, secure primitives — survive a hostile wire.
package integration_test

import (
	"context"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestSecureSessionOverWAN(t *testing.T) {
	// Full secure join + messaging with 40ms latency and jitter. This is
	// wall-clock real: each round trip actually sleeps.
	net := simnet.NewNetworkSeeded(simnet.LinkProfile{
		Latency: 10 * time.Millisecond, Jitter: 3 * time.Millisecond, Bandwidth: 1_250_000,
	}, 7)
	defer net.Close()

	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "g")
	db.Register("bob", "pw", "g")
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "wan-broker", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "wan-broker", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	}); err != nil {
		t.Fatal(err)
	}

	join := func(alias string) *core.SecureClient {
		cl, err := client.New(net, membership.NewPSE("", 0), alias)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		clTrust, _ := dep.TrustStore()
		sc, err := core.NewSecureClient(cl, clTrust)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ctxT(t, 30*time.Second)
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatalf("%s secureConnection over WAN: %v", alias, err)
		}
		if err := sc.SecureLogin(ctx, "pw"); err != nil {
			t.Fatalf("%s secureLogin over WAN: %v", alias, err)
		}
		return sc
	}
	alice := join("alice")
	bob := join("bob")

	bobEvents := events.NewCollector(bob.Bus())
	ctx := ctxT(t, 30*time.Second)
	start := time.Now()
	if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "g", "over the wan"); err != nil {
		t.Fatal(err)
	}
	if _, ok := bobEvents.WaitFor(events.SecureMessage, 20*time.Second); !ok {
		t.Fatal("secure message lost over WAN")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("delivery after %v — latency model not applied?", elapsed)
	}
}

func TestBestEffortMessagingUnderLoss(t *testing.T) {
	// 30% loss. Broker ops ride on request/response and genuinely fail
	// sometimes (JXTA-Overlay treats those as call failures); the
	// messenger primitive is explicitly best-effort. This test confirms
	// the stack degrades rather than wedges: with retries, a session is
	// established and at least some messages land.
	net := simnet.NewNetworkSeeded(simnet.LinkProfile{Loss: 0.3}, 99)
	defer net.Close()
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "g")
	db.Register("bob", "pw", "g")
	br, err := broker.New(broker.Config{
		Name: "lossy-broker", PeerID: keys.LegacyPeerID("lossy-broker"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	cl := mustJoinLossy(t, net, br, "alice")
	bob := mustJoinLossy(t, net, br, "bob")

	bobEvents := events.NewCollector(bob.Bus())
	sent := 0
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		if err := cl.SendMsgPeer(ctx, bob.PeerID(), "g", "best effort"); err == nil {
			sent++
		}
		cancel()
	}
	if sent == 0 {
		t.Fatal("no message was ever sent under 30% loss")
	}
	// At least one send must land (p(all lost) is negligible).
	if _, ok := bobEvents.WaitFor(events.MessageReceived, 10*time.Second); !ok {
		t.Fatalf("none of %d sent messages arrived", sent)
	}
}

// mustJoinLossy retries connect+login until the session is up.
func mustJoinLossy(t *testing.T, net *simnet.Network, br *broker.Broker, alias string) *client.Client {
	t.Helper()
	cl, err := client.New(net, membership.NewNone(), alias)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if waituntil.True(30*time.Second, func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		err = cl.Connect(ctx, br.PeerID())
		cancel()
		if err != nil {
			return false
		}
		ctx, cancel = context.WithTimeout(context.Background(), 500*time.Millisecond)
		err = cl.Login(ctx, "pw")
		cancel()
		return err == nil
	}) {
		return cl
	}
	t.Fatalf("%s could not join under loss: %v", alias, err)
	return nil
}

func TestPartitionAndHealSession(t *testing.T) {
	// A partition between client and broker makes ops fail; healing
	// restores service without rebuilding the session.
	net := simnet.NewNetwork(simnet.ProfileLocal)
	defer net.Close()
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "g")
	br, err := broker.New(broker.Config{
		Name: "b", PeerID: keys.LegacyPeerID("b"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	cl, err := client.New(net, membership.NewNone(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := ctxT(t, 20*time.Second)
	if err := cl.Connect(ctx, br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(ctx, "pw"); err != nil {
		t.Fatal(err)
	}

	net.Partition(simnet.NodeID(cl.PeerID()), br.NodeID())
	shortCtx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	_, err = cl.GetOnlinePeers(shortCtx, "g")
	cancel()
	if err == nil {
		t.Fatal("op succeeded across a partition")
	}

	net.Heal(simnet.NodeID(cl.PeerID()), br.NodeID())
	peers, err := cl.GetOnlinePeers(ctx, "g")
	if err != nil {
		t.Fatalf("op after heal: %v", err)
	}
	if len(peers) != 1 {
		t.Fatalf("peers after heal = %v", peers)
	}
}
