package core

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/xdsig"
	"jxtaoverlay/internal/xmldoc"
)

// BrokerConfig parameterizes the broker-side security extension.
type BrokerConfig struct {
	// KeyPair is SK/PK_Br.
	KeyPair *keys.KeyPair
	// Credential is Cred_Br^Adm, issued by the administrator.
	Credential *cred.Credential
	// Trust is the broker's trust store (anchored at the administrator).
	Trust *cred.TrustStore
	// CredValidity is the lifetime of client credentials issued at
	// secureLogin (0 = DefaultCredValidity).
	CredValidity time.Duration
	// SidTTL bounds how long an unused session identifier stays valid
	// (0 = 2 minutes).
	SidTTL time.Duration
	// RequireSignedAdvs makes the broker reject unsigned or untrusted
	// advertisement publications.
	RequireSignedAdvs bool
	// VerifyCacheSize bounds the broker's signed-advertisement
	// verification cache (0 = xdsig.DefaultVerifyCacheSize).
	VerifyCacheSize int
	// LeaseTTL enables presence leases: secureLogin grants a lease of
	// this duration, the signed heartbeat op renews it, and a session
	// that misses its heartbeats long enough for the lease to lapse is
	// taken offline (audited peer-down "lease-expired", relay flips to
	// queueing). 0 disables leases — presence then never expires, the
	// pre-liveness behaviour. Deployments that set it must Close() the
	// BrokerSecurity to stop the expiry sweeper.
	LeaseTTL time.Duration
}

// BrokerSecurity is the security extension attached to one broker.
type BrokerSecurity struct {
	cfg BrokerConfig
	b   *broker.Broker

	// vcache memoizes advertisement verification verdicts: a broker
	// re-verifies the same signed advertisement on every re-publication
	// and federation forward, which the cache turns into a digest lookup.
	vcache *xdsig.VerifyCache

	mu     sync.Mutex
	sids   map[string]time.Time
	leases map[keys.PeerID]*lease
	clock  func() time.Time

	// Liveness counters (see LivenessStats). Atomics: the telemetry
	// pull collectors read them without the mutex.
	leasesGranted      atomic.Uint64
	leasesExpired      atomic.Uint64
	heartbeatsRenewed  atomic.Uint64
	heartbeatsRejected atomic.Uint64

	// Lease-expiry sweeper lifecycle (running only when LeaseTTL > 0).
	sweepStop chan struct{}
	sweepDone chan struct{}
	closeOnce sync.Once
}

// EnableBrokerSecurity attaches the secure primitives to a broker:
// it registers the secureConnection and secureLogin operations and,
// when configured, the signed-advertisement acceptance policy.
func EnableBrokerSecurity(b *broker.Broker, cfg BrokerConfig) (*BrokerSecurity, error) {
	if cfg.KeyPair == nil || cfg.Credential == nil || cfg.Trust == nil {
		return nil, errors.New("core: broker security requires key pair, credential and trust store")
	}
	if !cfg.Credential.Key.Equal(cfg.KeyPair.Public()) {
		return nil, errors.New("core: broker credential does not match key pair")
	}
	if cfg.Credential.Role != cred.RoleBroker {
		return nil, errors.New("core: credential role is not broker")
	}
	if cfg.CredValidity <= 0 {
		cfg.CredValidity = DefaultCredValidity
	}
	if cfg.SidTTL <= 0 {
		cfg.SidTTL = 2 * time.Minute
	}
	bs := &BrokerSecurity{
		cfg:    cfg,
		b:      b,
		vcache: xdsig.NewVerifyCache(cfg.Trust, cfg.VerifyCacheSize),
		sids:   make(map[string]time.Time),
		leases: make(map[keys.PeerID]*lease),
		clock:  time.Now,
	}
	b.RegisterOp(proto.OpSecureConnect, bs.handleSecureConnect)
	b.RegisterOp(proto.OpSecureLogin, bs.handleSecureLogin)
	b.RegisterOp(OpSecureRenew, bs.handleSecureRenew)
	b.RegisterOp(OpHeartbeat, bs.handleHeartbeat)
	if cfg.RequireSignedAdvs {
		b.SetAdvVerifier(bs.verifyAdv)
	}
	if cfg.LeaseTTL > 0 {
		bs.sweepStop = make(chan struct{})
		bs.sweepDone = make(chan struct{})
		go bs.sweepLeases()
	}
	return bs, nil
}

// Close stops the lease-expiry sweeper. A no-op when leases are
// disabled; safe to call more than once.
func (bs *BrokerSecurity) Close() {
	bs.closeOnce.Do(func() {
		if bs.sweepStop != nil {
			close(bs.sweepStop)
			<-bs.sweepDone
		}
	})
}

// SetClock overrides the time source (tests).
func (bs *BrokerSecurity) SetClock(now func() time.Time) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.clock = now
}

// Credential returns the broker's administrator-issued credential.
func (bs *BrokerSecurity) Credential() *cred.Credential { return bs.cfg.Credential }

// IssueClientCredential issues Cred_Cl^Br for a key out of band — the
// same credential secureLogin would issue, exposed for tooling and for
// pre-provisioned deployments.
func (bs *BrokerSecurity) IssueClientCredential(subject keys.PeerID, username string, key *keys.PublicKey) (*cred.Credential, error) {
	return cred.Issue(bs.cfg.KeyPair, bs.cfg.Credential.Subject, subject, username, cred.RoleClient, key, bs.cfg.CredValidity)
}

// PendingSids reports how many session identifiers are outstanding.
func (bs *BrokerSecurity) PendingSids() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.sids)
}

// handleSecureConnect implements the broker side of §4.2.1: receive the
// client's random challenge, mint a session identifier, and prove
// legitimacy by returning S_SKBr(chall) together with Cred_Br^Adm.
func (bs *BrokerSecurity) handleSecureConnect(_ keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	chall, ok := msg.Get(proto.ElemChallenge)
	if !ok || len(chall) == 0 {
		return proto.Fail(proto.ErrBadRequest)
	}
	sidBytes, err := keys.RandomBytes(16)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	sid := hex.EncodeToString(sidBytes)

	now := bs.now()
	bs.mu.Lock()
	for s, t := range bs.sids { // lazy expiry sweep
		if now.Sub(t) > bs.cfg.SidTTL {
			delete(bs.sids, s)
		}
	}
	bs.sids[sid] = now
	bs.mu.Unlock()

	sig, err := bs.cfg.KeyPair.Sign(chall)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	credDoc, err := bs.cfg.Credential.Document()
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	return proto.OK().
		AddString(proto.ElemSid, sid).
		Add(proto.ElemSig, sig).
		AddXML(proto.ElemCred, credDoc.Canonical())
}

func (bs *BrokerSecurity) now() time.Time {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.clock()
}

// consumeSid enforces single use: a sid is deleted the moment it is
// presented (§4.2.2 step 5), which is what blocks login replay.
func (bs *BrokerSecurity) consumeSid(sid string) bool {
	now := bs.now()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	issued, ok := bs.sids[sid]
	if !ok {
		return false
	}
	delete(bs.sids, sid)
	return now.Sub(issued) <= bs.cfg.SidTTL
}

// auditAuth records one authentication outcome — "ok", or the proto
// error token the client was refused with — in the broker's audit
// journal. Outcomes that never identified a claimant (undecryptable or
// malformed requests) are not audited: there is no peer to attribute
// them to, and the rate limiter's refusals are audited separately.
func (bs *BrokerSecurity) auditAuth(kind string, peer keys.PeerID, op, reason string) {
	bs.b.Audit(audit.Event{Kind: kind, Peer: string(peer), Op: op, Reason: reason})
}

// handleSecureLogin implements the broker side of §4.2.2.
func (bs *BrokerSecurity) handleSecureLogin(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	envBytes, ok := msg.Get(proto.ElemEnvelope)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	env, err := keys.ParseEnvelope(envBytes)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	// Step 4: decrypt with SK_Br.
	body, err := bs.cfg.KeyPair.Decrypt(env)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	doc, err := xmldoc.ParseCanonical(body)
	if err != nil || doc.Name != "SecureLoginRequest" {
		return proto.Fail(proto.ErrBadRequest)
	}
	user := doc.ChildText("User")
	pass := doc.ChildText("Pass")
	peerID := keys.PeerID(doc.ChildText("PeerID"))
	sid := doc.ChildText("Sid")
	clientKey, err := keys.ParsePublicBase64(doc.ChildText("Key"))
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	sig, err := base64.StdEncoding.DecodeString(doc.ChildText("Signature"))
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}

	// Step 5: single-use session identifier (anti-replay).
	if !bs.consumeSid(sid) {
		bs.auditAuth(audit.KindLogin, peerID, proto.OpSecureLogin, proto.ErrBadSid)
		return proto.Fail(proto.ErrBadSid)
	}

	// Verify the request signature S_SKCl(username, password, PKCl).
	if err := clientKey.Verify(doc.CanonicalSkip("Signature"), sig); err != nil {
		bs.auditAuth(audit.KindLogin, peerID, proto.OpSecureLogin, proto.ErrBadSignature)
		return proto.Fail(proto.ErrBadSignature)
	}

	// Step 7: key authenticity against the claimed peer identifier
	// (CBID binding, the mechanism of [15]).
	if err := keys.VerifyCBID(peerID, clientKey); err != nil {
		bs.auditAuth(audit.KindLogin, peerID, proto.OpSecureLogin, proto.ErrCBIDMismatch)
		return proto.Fail(proto.ErrCBIDMismatch)
	}

	// Step 6: username/password against the central database.
	ctx, cancel := context.WithTimeout(context.Background(), bs.b.OpTimeout())
	defer cancel()
	groups, err := bs.b.DB().Authenticate(ctx, user, pass)
	if err != nil {
		bs.auditAuth(audit.KindLogin, peerID, proto.OpSecureLogin, proto.ErrAuthFailed)
		return proto.Fail(proto.ErrAuthFailed)
	}

	// Step 8: issue cr = Cred_Cl^Br containing PK_Cl and the username.
	clientCred, err := cred.Issue(bs.cfg.KeyPair, bs.cfg.Credential.Subject, peerID, user, cred.RoleClient, clientKey, bs.cfg.CredValidity)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	credDoc, err := clientCred.Document()
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}

	bs.b.RegisterPeer(peerID, user, groups)
	bs.auditAuth(audit.KindLogin, peerID, proto.OpSecureLogin, "ok")

	resp := proto.OK().
		AddString(proto.ElemGroups, joinCSV(groups)).
		AddXML(proto.ElemCred, credDoc.Canonical())
	// Liveness: the response carries the presence lease the session
	// must heartbeat to keep. Granted AFTER RegisterPeer so the lease
	// records the session's ConnectedAt — the monotonic guard key a
	// later expiry is checked against.
	if leaseID, ttl, ok := bs.grantLease(peerID); ok {
		resp.AddString(proto.ElemLease, leaseID).
			AddString(proto.ElemLeaseTTL, strconv.FormatInt(ttl.Milliseconds(), 10))
	}
	return resp
}

// verifyAdv is the signed-advertisement acceptance policy: structural
// XMLdsig validity, a trusted credential chain, CBID binding, and
// ownership (the signer must be the peer the advertisement describes).
// Verdicts ride the broker's verification cache, so a re-published or
// federation-forwarded advertisement costs a digest lookup. The parsed
// advertisement — needed for the ownership check anyway — is returned
// to the broker, which makes this the publish path's only parse.
func (bs *BrokerSecurity) verifyAdv(doc *xmldoc.Element) (advert.Advertisement, error) {
	res, err := bs.vcache.VerifyTrusted(doc, bs.now())
	if err != nil {
		return nil, err
	}
	adv, err := advert.Parse(doc)
	if err != nil {
		return nil, err
	}
	if err := CheckParsedAdvOwnership(adv, res.Signer.Subject); err != nil {
		return nil, err
	}
	return adv, nil
}

// VerifyCache exposes the broker's advertisement verification cache for
// diagnostics.
func (bs *BrokerSecurity) VerifyCache() *xdsig.VerifyCache { return bs.vcache }

// Trust returns the broker's trust store (telemetry reads its chain
// cache statistics).
func (bs *BrokerSecurity) Trust() *cred.TrustStore { return bs.cfg.Trust }

// CheckAdvOwnership rejects signed advertisements whose signer is not
// the peer the advertisement describes — without it, any credentialed
// user could still publish advertisements impersonating another peer.
func CheckAdvOwnership(doc *xmldoc.Element, signer keys.PeerID) error {
	adv, err := advert.Parse(doc)
	if err != nil {
		return err
	}
	return CheckParsedAdvOwnership(adv, signer)
}

// CheckParsedAdvOwnership is CheckAdvOwnership for callers that already
// hold the parsed advertisement (the broker's single-parse publish
// path).
func CheckParsedAdvOwnership(adv advert.Advertisement, signer keys.PeerID) error {
	owner := advOwner(adv)
	if owner != "" && owner != signer {
		return errors.New("core: advertisement owner does not match signer")
	}
	return nil
}

func advOwner(adv advert.Advertisement) keys.PeerID {
	switch a := adv.(type) {
	case *advert.Peer:
		return a.PeerID
	case *advert.Pipe:
		return a.PeerID
	case *advert.Presence:
		return a.PeerID
	case *advert.FileList:
		return a.PeerID
	case *advert.Stats:
		return a.PeerID
	case *advert.Group:
		return a.Creator
	default:
		return ""
	}
}

func joinCSV(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
