package telemetry

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// EnablePprof mounts the Go runtime profiler on the registry's HTTP
// surface, riding the same server as /metrics (and /debug/traces,
// /debug/audit when those are mounted):
//
//	/debug/pprof/           index
//	/debug/pprof/cmdline    process arguments
//	/debug/pprof/profile    CPU profile (?seconds=N)
//	/debug/pprof/symbol     address→symbol resolution
//	/debug/pprof/trace      execution trace (?seconds=N)
//
// plus the named profiles the index links (heap, goroutine, block,
// mutex, threadcreate, allocs) via the index handler's path dispatch.
//
// Contention profiling is opt-in because it taxes every lock operation
// process-wide: with contention=true the mutex profile samples 1 in 5
// contended lock events and the block profile samples blocking events
// lasting ≳100µs. Like Handle, call before Handler/Serve.
func (r *Registry) EnablePprof(contention bool) {
	if contention {
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100_000) // report blocking ≥100µs
	}
	// The index handler serves every /debug/pprof/<name> profile; the
	// four specials below are separate handlers in net/http/pprof.
	r.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	r.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	r.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	r.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	r.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}
