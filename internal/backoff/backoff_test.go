package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestCeilingDoublesAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 1 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1 * time.Second, 1 * time.Second,
	}
	for n, w := range want {
		if got := p.Ceiling(n); got != w {
			t.Fatalf("Ceiling(%d) = %v, want %v", n, got, w)
		}
	}
	// Overflow safety: an absurd attempt number still returns the cap.
	if got := p.Ceiling(1 << 30); got != p.Cap {
		t.Fatalf("Ceiling(huge) = %v, want cap %v", got, p.Cap)
	}
}

func TestZeroPolicyFallsBackToDefault(t *testing.T) {
	var p Policy
	if got := p.Ceiling(0); got != DefaultPolicy.Base {
		t.Fatalf("zero policy Ceiling(0) = %v, want %v", got, DefaultPolicy.Base)
	}
	if p.Delay(0, nil) <= 0 {
		t.Fatal("zero policy Delay must stay positive")
	}
}

func TestDelayWithinBoundsAndFloored(t *testing.T) {
	p := Policy{Base: 80 * time.Millisecond, Cap: 2 * time.Second}
	rnd := rand.New(rand.NewSource(7))
	for n := 0; n < 12; n++ {
		c := p.Ceiling(n)
		for i := 0; i < 200; i++ {
			d := p.Delay(n, rnd.Float64)
			if d > c {
				t.Fatalf("attempt %d: delay %v above ceiling %v", n, d, c)
			}
			if d < c/16 {
				t.Fatalf("attempt %d: delay %v below floor %v", n, d, c/16)
			}
		}
	}
	// A zero draw is clamped to the floor, never zero.
	if d := p.Delay(0, func() float64 { return 0 }); d != p.Base/16 {
		t.Fatalf("zero draw = %v, want floor %v", d, p.Base/16)
	}
}

func TestSourceDeterministicAndResettable(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Cap: 1 * time.Second}
	a, b := NewSource(p, 42), NewSource(p, 42)
	for i := 0; i < 8; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("draw %d diverged: %v vs %v", i, da, db)
		}
	}
	if a.Attempt() != 8 {
		t.Fatalf("attempt = %d, want 8", a.Attempt())
	}
	a.Reset()
	if a.Attempt() != 0 {
		t.Fatal("Reset did not rewind the attempt counter")
	}
	// After reset the schedule restarts from the first ceiling.
	if d := a.Next(); d > p.Base {
		t.Fatalf("post-reset delay %v above first ceiling %v", d, p.Base)
	}
}

func TestMaxDelaysWithinConvictsStorms(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 1 * time.Second}
	// Floors: 6.25ms, 12.5ms, 25ms, 50ms, 62.5ms, 62.5ms... The bound
	// must be monotone in the interval and hit at least 1 immediately.
	if got := p.MaxDelaysWithin(0); got != 1 {
		t.Fatalf("MaxDelaysWithin(0) = %d, want 1", got)
	}
	small := p.MaxDelaysWithin(100 * time.Millisecond)
	big := p.MaxDelaysWithin(10 * time.Second)
	if small >= big {
		t.Fatalf("bound not monotone: %d >= %d", small, big)
	}
	// 10s of minimum-draw delays at a 62.5ms steady floor: bound stays
	// in a sane band (coarse — the point is it is finite and usable as
	// a gate).
	if big < 100 || big > 400 {
		t.Fatalf("MaxDelaysWithin(10s) = %d, outside sanity band", big)
	}
}
