package wal

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWALDecode pins the two decoder invariants recovery leans on:
// arbitrary bytes never panic (a corrupt log cannot take the broker
// down at startup), and any ACCEPTED record is a fixed point of the
// codec — it re-encodes byte-identically, so replay → compaction →
// replay cannot drift.
func FuzzWALDecode(f *testing.F) {
	seed := func(rec Record) {
		enc, err := AppendRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	seed(Record{Kind: KindAdd, Seq: 1, To: "urn:jxta:cbid-abc", From: "urn:jxta:cbid-def",
		Group: "math", Payload: []byte("sealed slice bytes"), Expires: time.Unix(1700000000, 42)})
	seed(Record{Kind: KindAdd, Seq: 2, Forwarded: true, Expires: time.Time{}})
	seed(Record{Kind: KindAck, Seq: 1, Reason: AckDelivered})
	seed(Record{Kind: KindAck, Seq: 1<<63 - 1, Reason: AckExpired})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 1})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted record claims %d of %d bytes", n, len(data))
		}
		re, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("accepted record fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round-trip drift:\n in: %x\nout: %x", data[:n], re)
		}
	})
}
