// Package audit is the broker's tamper-evident security event journal:
// an append-only, hash-chained log of every security-relevant decision
// the stack makes — offenses, admission refusals, relay drops, WAL
// errors, replay/verify/open failures, login and renew outcomes,
// federation presence transitions — durable across restarts and
// verifiable after the fact.
//
// Tamper evidence has three layers. Each record is CRC-framed (against
// accidental damage) and carries the SHA-256 of its predecessor's full
// framed bytes, so the journal is a hash chain: flipping a bit,
// reordering records or splicing segments breaks the chain at an exact
// byte offset. Periodically the chain is sealed by a checkpoint record
// whose payload is a broker-signed XMLdsig attestation of (chain head,
// record count, timestamp) — the same signature shape and credential
// chain advertisements use — so a forged chain rewrite needs the
// broker's private key, and a truncation past a checkpoint the auditor
// has seen is provable rollback. Verify replays the whole journal and
// reports the first bad segment+offset; see SECURITY.md, "Audit trust
// model", for exactly what each layer does and does not prove.
//
// The storage machinery is patterned on internal/relay/wal — CRC +
// length-prefix framing, numbered segments, staged appends drained by a
// background flusher with the fsync off the append lock — with one
// deliberate difference: rotation NEVER deletes. The WAL compacts
// because it tracks live queue state; an audit journal's whole point is
// history, so outgrowing SegmentBytes just starts a fresh segment and
// the old ones stay, hash-chained across the boundary.
package audit

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
)

// Event kinds. The vocabulary is part of the operational surface
// (queries filter on it); extend it, don't repurpose it.
const (
	// KindOffense: an out-of-band refusal fed into offender tracking
	// (relay quota rejections and similar).
	KindOffense = "offense"
	// KindAlert: a SecurityAlert was raised (offense streak crossed the
	// admission threshold, or a client-side open failure).
	KindAlert = "alert"
	// KindRateLimited: admission control refused an operation.
	KindRateLimited = "rate-limited"
	// KindRelayDrop: the relay shed a slice (quota or overflow).
	KindRelayDrop = "relay-drop"
	// KindWALError: the relay WAL failed to log a queue mutation.
	KindWALError = "wal-error"
	// KindOpenFail: a secure envelope failed verification/open at a
	// receiving peer (replay, tampering, unknown sender...).
	KindOpenFail = "open-fail"
	// KindLogin: a secureLogin outcome (reason "ok" or the error token).
	KindLogin = "login"
	// KindRenew: a credential renewal outcome.
	KindRenew = "renew"
	// KindPeerUp / KindPeerDown: presence transitions, local and
	// federated.
	KindPeerUp   = "peer-up"
	KindPeerDown = "peer-down"
	// KindHeartbeat: a presence-lease heartbeat outcome (reason "ok"
	// or the refusal token — a replayed or stale heartbeat lands here).
	KindHeartbeat = "heartbeat"
	// KindIdemDedup: a retried mutating op was answered from the
	// idempotency dedup window instead of re-executing.
	KindIdemDedup = "idem-dedup"
)

// Event is one security event to be journaled. Strings beyond the
// codec's field bound are truncated, never rejected — an audit path
// must not refuse to record an event because an attacker padded a
// field.
type Event struct {
	Kind   string
	Peer   string
	Op     string
	Reason string
	Trace  uint64
}

// ErrJournalFailed is returned by Sync/Close after the journal has
// failed (an I/O error). Appends after a failure are silently counted
// as lost — the security surface keeps working; the journal just stops
// being written, exactly like a dying disk.
var ErrJournalFailed = errors.New("audit: journal failed")

// ErrJournalDamaged is returned by Open when a non-final segment (or a
// non-tail region) fails to replay. Unlike the relay WAL, the journal
// refuses to append onto a broken chain: damage beyond a crash's torn
// tail is evidence, and evidence wants Verify, not overwriting.
var ErrJournalDamaged = errors.New("audit: journal damaged")

// Options parameterizes a Journal.
type Options struct {
	// Dir is the directory holding the segments (required).
	Dir string
	// SyncInterval batches fsyncs exactly like the relay WAL: 0 syncs
	// every append before it returns; a positive value stages appends
	// in memory and a background flusher writes+fsyncs each batch that
	// often; a negative value writes inline but never syncs (tests).
	SyncInterval time.Duration
	// SegmentBytes is the size the active segment may reach before a
	// fresh one is started (0 = 4 MiB). Old segments are never deleted.
	SegmentBytes int64
	// CheckpointEvery is how many records may accumulate before the
	// chain is sealed with a signed checkpoint (0 = 256; negative =
	// only on Close). Ignored without a Signer.
	CheckpointEvery int
	// Signer is the broker keypair sealing checkpoints (nil = the
	// journal chains but is never checkpointed).
	Signer *keys.KeyPair
	// Chain is the signer's credential chain, leaf first; Chain[0].Key
	// must be Signer's public key. Required when Signer is set.
	Chain []*cred.Credential
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// RingSize bounds the in-memory query ring backing /debug/audit
	// (0 = 4096).
	RingSize int
}

// Stats is a point-in-time snapshot of journal counters.
type Stats struct {
	// Records is the total appended this process (checkpoints included).
	Records uint64
	// Recovered is how many records Open replayed from disk.
	Recovered uint64
	// Checkpoints counts signed checkpoints appended this process.
	Checkpoints uint64
	// Lost counts events dropped because the journal had failed.
	Lost uint64
	// TornBytes is how many trailing bytes Open truncated off the final
	// segment (a crash mid-append).
	TornBytes int64
	// Segments is the number of on-disk segments (history included).
	Segments int
	// Seq is the last assigned sequence number.
	Seq uint64
	// Failed reports the sticky failure state.
	Failed bool
}

// Journal is an open audit journal.
type Journal struct {
	opts  Options
	every int

	// syncMu serializes batched fsyncs (the flusher and Sync), acquired
	// BEFORE mu and never while holding it — the write+fsync run with mu
	// released so appends keep flowing while the disk catches up (same
	// split as the relay WAL).
	syncMu sync.Mutex

	mu        sync.Mutex
	f         *os.File
	segFirst  int // lowest on-disk segment index (history floor)
	segIndex  int // active segment index
	segBytes  int64
	buf       []byte // reusable encode buffer (inline mode + checkpoints)
	stage     []byte // batched mode: encoded records awaiting the flusher
	spare     []byte // recycled staging buffer
	seq       uint64
	head      [HashSize]byte
	sinceCkpt int // records since the last checkpoint
	recovered uint64
	appended  uint64
	ckpts     uint64
	lost      uint64
	tornBytes int64
	err       error // sticky failure

	ring     []ringEntry
	ringNext int

	stop chan struct{}
	wg   sync.WaitGroup
}

type ringEntry struct {
	seq  uint64
	time int64
	ev   Event
}

const defaultSegmentBytes = 4 << 20

func segName(i int) string { return fmt.Sprintf("audit-%08d.seg", i) }

// Open replays the segments in dir (creating it if needed) and returns
// the journal ready for appends, its chain state restored. A torn tail
// on the final segment is truncated away (crash artifact); any other
// damage fails with ErrJournalDamaged — run Verify on the directory to
// locate it.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, errors.New("audit: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	if opts.Signer != nil && len(opts.Chain) == 0 {
		return nil, errors.New("audit: Signer requires a credential Chain")
	}
	every := opts.CheckpointEvery
	if every == 0 {
		every = 256
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}

	j := &Journal{
		opts:  opts,
		every: every,
		ring:  make([]ringEntry, opts.RingSize),
		stop:  make(chan struct{}),
	}
	// The torn-tail allowance applies to the last segment holding any
	// data, not merely the last file: rotation opens the next segment
	// the moment the old one fills, so a crash (or a truncation) right
	// at the boundary leaves the torn record in a segment followed only
	// by empty ones.
	lastData := -1
	for si, seg := range segs {
		if fi, serr := os.Stat(filepath.Join(opts.Dir, segName(seg))); serr == nil && fi.Size() > 0 {
			lastData = si
		}
	}
	for si, seg := range segs {
		final := si >= lastData
		if err := j.replaySegment(filepath.Join(opts.Dir, segName(seg)), final); err != nil {
			return nil, err
		}
	}

	j.segFirst, j.segIndex = 0, 0
	if len(segs) > 0 {
		j.segFirst = segs[0]
		j.segIndex = segs[len(segs)-1]
	}
	path := filepath.Join(opts.Dir, segName(j.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err == nil {
		j.segBytes = fi.Size()
	}
	j.f = f

	if opts.SyncInterval > 0 {
		j.wg.Add(1)
		go j.flusher(j.stop)
	}
	return j, nil
}

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var i int
		if n, _ := fmt.Sscanf(e.Name(), "audit-%d.seg", &i); n == 1 {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// replaySegment re-derives the chain state (seq, head) across one
// segment. The chain links are re-checked during replay: appending onto
// an already broken chain would launder the break into "it verified
// when written".
func (j *Journal) replaySegment(path string, final bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rec, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			if final && errors.Is(derr, ErrShortRecord) {
				// Crash artifact: truncate so appends resume at a clean
				// boundary. Anything else is damage, not a crash.
				j.tornBytes = int64(len(data) - off)
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return terr
				}
				return nil
			}
			return fmt.Errorf("%w: %s@%d: %v", ErrJournalDamaged, filepath.Base(path), off, derr)
		}
		if rec.Seq != j.seq+1 || rec.Prev != j.head {
			return fmt.Errorf("%w: %s@%d: hash chain break at seq %d", ErrJournalDamaged, filepath.Base(path), off, rec.Seq)
		}
		j.head = sha256.Sum256(data[off : off+n])
		j.seq = rec.Seq
		j.recovered++
		if rec.Frame == FrameEvent {
			j.storeRing(rec.Seq, rec.Time, Event{
				Kind: rec.Kind, Peer: rec.Peer, Op: rec.Op, Reason: rec.Reason, Trace: rec.Trace,
			})
		}
		off += n
	}
	return nil
}

// Record appends one event and returns its sequence number (0 when the
// journal is nil or has failed — the event is counted lost, never
// blocks the caller). This is the hot emit path: with a positive
// SyncInterval it costs one encode, one SHA-256 and a ring store under
// a mutex — no syscalls, no allocations steady-state (bench-gated by
// BenchmarkAuditOverhead/append).
func (j *Journal) Record(e Event) uint64 {
	if j == nil {
		return 0
	}
	clampEvent(&e)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		j.lost++
		return 0
	}
	rec := Record{
		Frame: FrameEvent, Seq: j.seq + 1, Prev: j.head,
		Time:  j.opts.Clock().UnixNano(),
		Trace: e.Trace, Kind: e.Kind, Peer: e.Peer, Op: e.Op, Reason: e.Reason,
	}
	if j.opts.SyncInterval > 0 {
		start := len(j.stage)
		var err error
		j.stage, err = AppendRecord(j.stage, rec)
		if err != nil {
			j.fail(err)
			j.lost++
			return 0
		}
		j.commitLocked(rec, j.stage[start:])
		return rec.Seq
	}
	if err := j.writeLocked(rec); err != nil {
		j.lost++
		return 0
	}
	j.maybeCheckpointLocked()
	return rec.Seq
}

// clampEvent truncates oversized fields instead of rejecting the event.
func clampEvent(e *Event) {
	if len(e.Kind) > maxFieldLen {
		e.Kind = e.Kind[:maxFieldLen]
	}
	if len(e.Peer) > maxFieldLen {
		e.Peer = e.Peer[:maxFieldLen]
	}
	if len(e.Op) > maxFieldLen {
		e.Op = e.Op[:maxFieldLen]
	}
	if len(e.Reason) > maxFieldLen {
		e.Reason = e.Reason[:maxFieldLen]
	}
}

// commitLocked advances the chain over one encoded record.
func (j *Journal) commitLocked(rec Record, framed []byte) {
	j.head = sha256.Sum256(framed)
	j.seq = rec.Seq
	j.appended++
	j.sinceCkpt++
	if rec.Frame == FrameEvent {
		j.storeRing(rec.Seq, rec.Time, Event{
			Kind: rec.Kind, Peer: rec.Peer, Op: rec.Op, Reason: rec.Reason, Trace: rec.Trace,
		})
	} else {
		j.ckpts++
		j.sinceCkpt = 0
	}
}

func (j *Journal) storeRing(seq uint64, ts int64, ev Event) {
	j.ring[j.ringNext] = ringEntry{seq: seq, time: ts, ev: ev}
	j.ringNext = (j.ringNext + 1) % len(j.ring)
}

// writeLocked encodes and writes one record inline (sync-per-append and
// never-sync modes), fsyncing when SyncInterval is 0.
func (j *Journal) writeLocked(rec Record) error {
	var err error
	j.buf, err = AppendRecord(j.buf[:0], rec)
	if err != nil {
		j.fail(err)
		return err
	}
	n, err := j.f.Write(j.buf)
	j.segBytes += int64(n)
	if err != nil {
		j.fail(err)
		return err
	}
	j.commitLocked(rec, j.buf)
	if j.opts.SyncInterval == 0 {
		if err := j.f.Sync(); err != nil {
			j.fail(err)
			return err
		}
	}
	return j.maybeRotateLocked()
}

// maybeCheckpointLocked seals the chain when enough records have
// accumulated. The RSA signature runs with mu held — a deliberate
// trade: a checkpoint every CheckpointEvery records stalls appends for
// one signature (~hundreds of µs), amortizing to well under the cost of
// the events it covers, and keeping the signed head exactly consistent
// with the chain position without a reservation protocol.
func (j *Journal) maybeCheckpointLocked() {
	if j.opts.Signer == nil || j.every < 0 || j.sinceCkpt < j.every {
		return
	}
	j.checkpointLocked()
}

func (j *Journal) checkpointLocked() {
	if j.opts.Signer == nil || j.sinceCkpt == 0 || j.err != nil {
		return
	}
	rec := Record{Frame: FrameCheckpoint, Seq: j.seq + 1, Prev: j.head, Time: j.opts.Clock().UnixNano()}
	payload, err := buildCheckpoint(rec.Seq, rec.Prev, time.Unix(0, rec.Time), j.opts.Signer, j.opts.Chain)
	if err != nil {
		j.fail(err)
		return
	}
	rec.Checkpoint = payload
	if j.opts.SyncInterval > 0 {
		start := len(j.stage)
		if j.stage, err = AppendRecord(j.stage, rec); err != nil {
			j.fail(err)
			return
		}
		j.commitLocked(rec, j.stage[start:])
		return
	}
	_ = j.writeLocked(rec)
}

// maybeRotateLocked starts a fresh segment once the active one outgrows
// its budget. Nothing is deleted — the journal is history.
func (j *Journal) maybeRotateLocked() error {
	if j.segBytes < j.opts.SegmentBytes {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.fail(err)
		return err
	}
	next := j.segIndex + 1
	nf, err := os.OpenFile(filepath.Join(j.opts.Dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.fail(err)
		return err
	}
	j.f.Close()
	j.f = nf
	j.segIndex = next
	j.segBytes = 0
	return nil
}

// Sync forces the staged batch (if any) to disk.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	return j.syncBatch(false)
}

// syncBatch drains the staging buffer with one write+fsync, mu released
// during the syscalls (the WAL's lock split). With checkpoint=true a
// due (or final) checkpoint is staged first.
func (j *Journal) syncBatch(checkpoint bool) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	if checkpoint {
		j.checkpointLocked()
	} else if j.opts.Signer != nil && j.every > 0 && j.sinceCkpt >= j.every {
		j.checkpointLocked()
	}
	if len(j.stage) == 0 {
		j.mu.Unlock()
		return nil
	}
	batch := j.stage
	j.stage = j.spare[:0]
	j.spare = nil
	f := j.f
	j.mu.Unlock()

	written, werr := f.Write(batch)
	var serr error
	if werr == nil {
		serr = f.Sync()
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if cap(batch) > cap(j.spare) {
		j.spare = batch[:0]
	}
	j.segBytes += int64(written)
	if werr != nil {
		j.fail(werr)
		return werr
	}
	if serr != nil {
		j.fail(serr)
		return serr
	}
	return j.maybeRotateLocked()
}

func (j *Journal) fail(err error) {
	if j.err == nil {
		j.err = fmt.Errorf("%w: %w", ErrJournalFailed, err)
	}
}

func (j *Journal) flusher(stop <-chan struct{}) {
	defer j.wg.Done()
	t := time.NewTicker(j.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_ = j.syncBatch(false)
		}
	}
}

// Checkpoint seals the chain now, regardless of cadence (tests, and
// operators wanting a fresh attestation before archiving).
func (j *Journal) Checkpoint() error {
	if j == nil {
		return nil
	}
	if j.opts.SyncInterval > 0 {
		return j.syncBatch(true)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.checkpointLocked()
	return j.err
}

// Close seals the chain with a final checkpoint, flushes and closes.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.stop != nil {
		close(j.stop)
		j.stop = nil
	}
	failed := j.err != nil
	j.mu.Unlock()
	j.wg.Wait()
	var err error
	if !failed {
		if j.opts.SyncInterval > 0 {
			err = j.syncBatch(true)
		} else {
			j.mu.Lock()
			j.checkpointLocked()
			err = j.err
			j.mu.Unlock()
		}
		if err == nil {
			j.mu.Lock()
			if j.f != nil {
				err = j.f.Sync()
			}
			j.mu.Unlock()
		}
	}
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// Head returns the current chain head — the externally rememberable
// trust point that makes rollback provable (pass it to Verify as
// ExpectHead).
func (j *Journal) Head() [HashSize]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.head
}

// Seq returns the last assigned sequence number.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Stats snapshots the journal counters (telemetry collectors read it).
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Records:     j.appended,
		Recovered:   j.recovered,
		Checkpoints: j.ckpts,
		Lost:        j.lost,
		TornBytes:   j.tornBytes,
		Segments:    j.segIndex - j.segFirst + 1,
		Seq:         j.seq,
		Failed:      j.err != nil,
	}
}
