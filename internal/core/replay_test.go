package core

import (
	"fmt"
	"testing"
	"time"
)

func TestReplayGuardAdmitsOnce(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	wire := []byte("envelope-bytes")
	now := time.Now()
	if err := g.Check(wire, now); err != nil {
		t.Fatalf("first Check: %v", err)
	}
	if err := g.Check(wire, now); err != ErrMessageReplayed {
		t.Fatalf("second Check = %v, want ErrMessageReplayed", err)
	}
	// A different message is admitted.
	if err := g.Check([]byte("other"), now); err != nil {
		t.Fatalf("different message: %v", err)
	}
}

func TestReplayGuardFreshness(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	base := time.Now()
	g.SetClock(func() time.Time { return base })
	if err := g.Check([]byte("old"), base.Add(-2*time.Minute)); err != ErrMessageStale {
		t.Fatalf("stale past = %v", err)
	}
	if err := g.Check([]byte("future"), base.Add(2*time.Minute)); err != ErrMessageStale {
		t.Fatalf("stale future = %v", err)
	}
	if err := g.Check([]byte("fresh"), base.Add(-30*time.Second)); err != nil {
		t.Fatalf("fresh = %v", err)
	}
}

func TestReplayGuardEvictsExpired(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	now := time.Now()
	g.SetClock(func() time.Time { return now })
	g.Check([]byte("a"), now)
	g.Check([]byte("b"), now)
	// Advance past the window; next Check sweeps expired entries.
	now = now.Add(2 * time.Minute)
	g.Check([]byte("c"), now)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (expired entries swept)", g.Len())
	}
}

func TestReplayGuardBoundsMemory(t *testing.T) {
	g := NewReplayGuard(time.Hour, 8)
	now := time.Now()
	g.SetClock(func() time.Time { return now })
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond)
		if err := g.Check([]byte(fmt.Sprintf("m%02d", i)), now); err != nil {
			t.Fatalf("Check %d: %v", i, err)
		}
	}
	if g.Len() > 8 {
		t.Fatalf("Len = %d, exceeds maxEntries", g.Len())
	}
}

// TestReplayGuardPrunedNonceStillRejected pins the pruning invariant
// the store-and-forward relay depends on: a round nonce may only leave
// the guard's memory once replaying it would fail the freshness check
// anyway. The probe is a future-dated round (allowed clock skew):
// pruning keyed to ADMISSION time would drop it while its signed
// timestamp is still fresh, letting a relay replay a drained slice.
func TestReplayGuardPrunedNonceStillRejected(t *testing.T) {
	const window = time.Minute
	g := NewReplayGuard(window, 16)
	base := time.Now()
	now := base
	g.SetClock(func() time.Time { return now })

	nonce := []byte("round-nonce-1")
	// Signed 50s in the future (skew within ±window), admitted at base.
	sentAt := base.Add(50 * time.Second)
	if err := g.CheckRound("alice", nonce, sentAt); err != nil {
		t.Fatalf("first CheckRound: %v", err)
	}

	// 70s later the ADMISSION is older than the window, but the signed
	// timestamp is only 20s old — a replay is still fresh. Force sweeps
	// with unrelated traffic; the entry must survive them.
	now = base.Add(70 * time.Second)
	for i := 0; i < 3; i++ {
		if err := g.Check([]byte{byte(i)}, now); err != nil {
			t.Fatalf("filler Check: %v", err)
		}
	}
	if err := g.CheckRound("alice", nonce, sentAt); err != ErrMessageReplayed {
		t.Fatalf("replay inside window = %v, want ErrMessageReplayed", err)
	}

	// Once sentAt+window has passed, the entry may be pruned — and is:
	// staleness now rejects the replay, and memory is reclaimed.
	now = base.Add(3 * time.Minute)
	if err := g.Check([]byte("sweep-trigger"), now); err != nil {
		t.Fatalf("sweep trigger: %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (all pre-window entries pruned)", g.Len())
	}
	if err := g.CheckRound("alice", nonce, sentAt); err != ErrMessageStale {
		t.Fatalf("replay outside window = %v, want ErrMessageStale", err)
	}
}

// TestReplayGuardSweepAmortized: the expired-entry sweep must not run
// on every admit — only when overdue (window/4) or over budget.
func TestReplayGuardSweepAmortized(t *testing.T) {
	const window = time.Minute
	g := NewReplayGuard(window, 1024)
	base := time.Now()
	now := base
	g.SetClock(func() time.Time { return now })
	g.Check([]byte("early"), now)

	// Let the early entry expire, then admit within one sweep period:
	// the dead entry lingers (no sweep yet)...
	now = base.Add(window + time.Second)
	g.nextSweep = now.Add(window / 4)
	g.Check([]byte("mid"), now)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (sweep must be deferred)", g.Len())
	}
	// ...and the next overdue admit reclaims it.
	now = now.Add(window / 2)
	g.Check([]byte("late"), now)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (expired entry swept)", g.Len())
	}
}

func TestReplayGuardDefaults(t *testing.T) {
	g := NewReplayGuard(0, 0)
	if err := g.Check([]byte("x"), time.Now()); err != nil {
		t.Fatalf("defaulted guard rejected fresh message: %v", err)
	}
}
