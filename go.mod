module jxtaoverlay

go 1.24
