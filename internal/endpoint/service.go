package endpoint

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
)

// Reserved element names used by the endpoint layer itself.
const (
	elemSrc   = "jxta:src"
	elemDst   = "jxta:dst"
	elemSvc   = "jxta:svc"
	elemReqID = "jxta:reqid"
	elemRspID = "jxta:rspid"
	// svcResponse is the internal service that resolves pending requests.
	svcResponse = "jxta:resp"
	// svcRelay is the internal service relay-enabled nodes (brokers)
	// forward for NATed peers.
	svcRelay = "jxta:relay"
	// relayPayload carries the original frame inside a relay message.
	relayPayload = "jxta:relay:frame"
)

// Handler processes a message delivered to a registered service. The
// from argument is the peer ID claimed by the sender in the message
// envelope — note that without the security extension nothing
// authenticates it. A non-nil return value is sent back as the response
// when the message was a Request.
type Handler func(from keys.PeerID, msg *Message) *Message

// Errors returned by Send/Request.
var (
	ErrNoHandler  = errors.New("endpoint: no handler for service")
	ErrNoRelay    = errors.New("endpoint: destination unreachable and no relay configured")
	ErrClosed     = errors.New("endpoint: service closed")
	ErrBadRequest = errors.New("endpoint: malformed request")
)

// NodeID maps a peer ID onto its simnet attachment point.
func NodeID(id keys.PeerID) simnet.NodeID { return simnet.NodeID(id) }

// Service is one peer's endpoint: its attachment to the network plus the
// demux table of named services.
type Service struct {
	peerID keys.PeerID
	net    *simnet.Network

	mu       sync.RWMutex
	handlers map[string]Handler
	pending  map[string]chan *Message
	closed   bool

	relay    atomic.Value // keys.PeerID; relay hop for unreachable peers
	relaying atomic.Bool  // whether this node forwards for others

	// RxCount / TxCount feed the statistics primitives.
	rxCount atomic.Uint64
	txCount atomic.Uint64
	rxBytes atomic.Uint64
	txBytes atomic.Uint64
}

// NewService attaches a peer to the network and returns its endpoint.
func NewService(net *simnet.Network, peerID keys.PeerID) (*Service, error) {
	s := &Service{
		peerID:   peerID,
		net:      net,
		handlers: make(map[string]Handler),
		pending:  make(map[string]chan *Message),
	}
	s.relay.Store(keys.PeerID(""))
	if err := net.Attach(NodeID(peerID), s.deliver); err != nil {
		return nil, err
	}
	return s, nil
}

// PeerID returns the owning peer's identifier.
func (s *Service) PeerID() keys.PeerID { return s.peerID }

// Network returns the underlying fabric (used by diagnostics and tests).
func (s *Service) Network() *simnet.Network { return s.net }

// RegisterHandler installs the handler for a service name, replacing any
// previous registration.
func (s *Service) RegisterHandler(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[service] = h
}

// UnregisterHandler removes a service registration.
func (s *Service) UnregisterHandler(service string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.handlers, service)
}

// SetRelay configures the relay hop (normally the connected broker) used
// when a destination is not directly reachable.
func (s *Service) SetRelay(id keys.PeerID) { s.relay.Store(id) }

// Reachable reports whether the destination peer is currently attached
// to the fabric — the cheap pre-check the broker's store-and-forward
// relay uses to route traffic into the offline queue instead of burning
// a send on a departed peer. A true result is advisory (the peer can
// detach between the check and the send); the send's own error remains
// authoritative.
func (s *Service) Reachable(to keys.PeerID) bool {
	return s.net.Attached(NodeID(to))
}

// EnableRelaying makes this endpoint forward relay frames for others;
// brokers enable it, clients do not.
func (s *Service) EnableRelaying(on bool) { s.relaying.Store(on) }

// Counters returns (messages sent, messages received, bytes sent, bytes
// received).
func (s *Service) Counters() (tx, rx, txBytes, rxBytes uint64) {
	return s.txCount.Load(), s.rxCount.Load(), s.txBytes.Load(), s.rxBytes.Load()
}

// Send delivers msg to the named service on the destination peer. The
// message is stamped with the source, destination and service elements.
// If the destination is not directly reachable (NAT) the frame is routed
// through the configured relay.
func (s *Service) Send(to keys.PeerID, service string, msg *Message) error {
	m := msg.Clone()
	m.Set(elemSrc, []byte(s.peerID))
	m.Set(elemDst, []byte(to))
	m.Set(elemSvc, []byte(service))
	return s.sendFrame(to, m.Marshal())
}

func (s *Service) sendFrame(to keys.PeerID, frame []byte) error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	err := s.net.Send(NodeID(s.peerID), NodeID(to), frame)
	if errors.Is(err, simnet.ErrNotReachable) {
		relay := s.relay.Load().(keys.PeerID)
		if relay == "" {
			return fmt.Errorf("%w (dst %s)", ErrNoRelay, to)
		}
		wrapper := NewMessage()
		wrapper.Set(elemSrc, []byte(s.peerID))
		wrapper.Set(elemDst, []byte(relay))
		wrapper.Set(elemSvc, []byte(svcRelay))
		wrapper.AddString("jxta:relay:to", string(to))
		wrapper.Add(relayPayload, frame)
		err = s.net.Send(NodeID(s.peerID), NodeID(relay), wrapper.Marshal())
	}
	if err != nil {
		return err
	}
	s.txCount.Add(1)
	s.txBytes.Add(uint64(len(frame)))
	return nil
}

// Request sends msg and waits for the handler on the remote side to
// return a response, or for ctx to end.
func (s *Service) Request(ctx context.Context, to keys.PeerID, service string, msg *Message) (*Message, error) {
	idBytes, err := keys.RandomBytes(12)
	if err != nil {
		return nil, err
	}
	reqID := hex.EncodeToString(idBytes)
	ch := make(chan *Message, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.pending[reqID] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, reqID)
		s.mu.Unlock()
	}()

	m := msg.Clone()
	m.Set(elemReqID, []byte(reqID))
	if err := s.Send(to, service, m); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliver runs on simnet delivery goroutines.
func (s *Service) deliver(pkt simnet.Packet) {
	msg, err := ParseMessage(pkt.Payload)
	if err != nil {
		return // malformed frames are dropped, as JXTA does
	}
	s.rxCount.Add(1)
	s.rxBytes.Add(uint64(len(pkt.Payload)))

	svc, _ := msg.GetString(elemSvc)
	from := keys.PeerID("")
	if src, ok := msg.GetString(elemSrc); ok {
		from = keys.PeerID(src)
	}

	switch svc {
	case svcRelay:
		if !s.relaying.Load() {
			return
		}
		to, ok1 := msg.GetString("jxta:relay:to")
		frame, ok2 := msg.Get(relayPayload)
		if !ok1 || !ok2 {
			return
		}
		// Forward the original frame unchanged: the inner source element
		// is preserved, so the receiver sees the original sender.
		_ = s.net.Send(NodeID(s.peerID), simnet.NodeID(to), frame)
		return
	case svcResponse:
		rspID, _ := msg.GetString(elemRspID)
		s.mu.RLock()
		ch, ok := s.pending[rspID]
		s.mu.RUnlock()
		if ok {
			select {
			case ch <- msg:
			default:
			}
		}
		return
	}

	s.mu.RLock()
	h, ok := s.handlers[svc]
	s.mu.RUnlock()
	if !ok {
		return
	}
	resp := h(from, msg)
	if resp == nil {
		return
	}
	if reqID, ok := msg.GetString(elemReqID); ok && from != "" {
		resp.Set(elemRspID, []byte(reqID))
		_ = s.Send(from, svcResponse, resp)
	}
}

// Close detaches the endpoint; pending requests fail when their contexts
// expire.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.net.Detach(NodeID(s.peerID))
}
