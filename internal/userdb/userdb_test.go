package userdb

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
)

// Fast hashing for tests.
func testStore() *Store { return NewStoreIter(4) }

func TestRegisterAuthenticate(t *testing.T) {
	s := testStore()
	if err := s.Register("alice", "s3cret", "math", "art"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	groups, err := s.Authenticate("alice", "s3cret")
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	if len(groups) != 2 || groups[0] != "art" || groups[1] != "math" {
		t.Fatalf("groups = %v", groups)
	}
}

func TestAuthenticateFailuresUniform(t *testing.T) {
	s := testStore()
	s.Register("alice", "s3cret")
	if _, err := s.Authenticate("alice", "wrong"); err != ErrAuth {
		t.Fatalf("bad password = %v", err)
	}
	if _, err := s.Authenticate("bob", "s3cret"); err != ErrAuth {
		t.Fatalf("unknown user = %v", err)
	}
	s.SetDisabled("alice", true)
	if _, err := s.Authenticate("alice", "s3cret"); err != ErrAuth {
		t.Fatalf("disabled user = %v", err)
	}
	s.SetDisabled("alice", false)
	if _, err := s.Authenticate("alice", "s3cret"); err != nil {
		t.Fatalf("re-enabled user = %v", err)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	s := testStore()
	s.Register("alice", "x")
	if err := s.Register("alice", "y"); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if err := s.Register("", "y"); err == nil {
		t.Fatal("empty username accepted")
	}
}

func TestSetPassword(t *testing.T) {
	s := testStore()
	s.Register("alice", "old")
	if err := s.SetPassword("alice", "new"); err != nil {
		t.Fatalf("SetPassword: %v", err)
	}
	if _, err := s.Authenticate("alice", "old"); err != ErrAuth {
		t.Fatal("old password still valid")
	}
	if _, err := s.Authenticate("alice", "new"); err != nil {
		t.Fatalf("new password rejected: %v", err)
	}
	if err := s.SetPassword("ghost", "x"); err == nil {
		t.Fatal("SetPassword for missing user succeeded")
	}
}

func TestGroupManagement(t *testing.T) {
	s := testStore()
	s.Register("alice", "x", "math")
	if err := s.AddToGroup("alice", "art"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddToGroup("alice", "art"); err != nil {
		t.Fatal("idempotent AddToGroup failed")
	}
	groups, _ := s.Groups("alice")
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if err := s.RemoveFromGroup("alice", "math"); err != nil {
		t.Fatal(err)
	}
	groups, _ = s.Groups("alice")
	if len(groups) != 1 || groups[0] != "art" {
		t.Fatalf("groups = %v", groups)
	}
	if _, err := s.Groups("ghost"); err == nil {
		t.Fatal("Groups for missing user succeeded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testStore()
	s.Register("alice", "pw1", "math")
	s.Register("bob", "pw2")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s2 := testStore()
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := s2.Authenticate("alice", "pw1"); err != nil {
		t.Fatalf("Authenticate after load: %v", err)
	}
	if got := s2.Usernames(); len(got) != 2 || got[0] != "alice" {
		t.Fatalf("Usernames = %v", got)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	s := testStore()
	if err := s.Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if err := s.Load(bytes.NewReader([]byte(`[{"username":""}]`))); err == nil {
		t.Fatal("Load accepted malformed record")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "users.json")
	s := testStore()
	s.Register("alice", "pw")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	s2 := testStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if _, err := s2.Authenticate("alice", "pw"); err != nil {
		t.Fatal("authentication after file round trip failed")
	}
}

// --- remote protocol ---

type remoteFixture struct {
	net        *simnet.Network
	server     *Server
	client     *Client
	store      *Store
	adminKP    *keys.KeyPair
	brokerKP   *keys.KeyPair
	adminCred  *cred.Credential
	brokerCred *cred.Credential
	serverCred *cred.Credential
	dbEP       *endpoint.Service
	brEP       *endpoint.Service
}

func newRemoteFixture(t *testing.T) *remoteFixture {
	t.Helper()
	f := &remoteFixture{}
	f.net = simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(f.net.Close)

	f.adminKP = mustKey(300)
	f.brokerKP = mustKey(301)
	dbKP := mustKey(302)

	var err error
	f.adminCred, err = cred.SelfSigned(f.adminKP, "admin", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	brID, _ := keys.CBID(f.brokerKP.Public())
	f.brokerCred, err = cred.Issue(f.adminKP, f.adminCred.Subject, brID, "broker-1", cred.RoleBroker, f.brokerKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dbID, _ := keys.CBID(dbKP.Public())
	f.serverCred, err = cred.Issue(f.adminKP, f.adminCred.Subject, dbID, "central-db", cred.RoleDatabase, dbKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	trust, err := cred.NewTrustStore(f.adminCred)
	if err != nil {
		t.Fatal(err)
	}

	f.store = testStore()
	f.store.Register("alice", "s3cret", "math")

	f.dbEP, err = endpoint.NewService(f.net, dbID)
	if err != nil {
		t.Fatal(err)
	}
	f.server = NewServer(f.dbEP, f.store, dbKP, f.serverCred, trust)

	f.brEP, err = endpoint.NewService(f.net, brID)
	if err != nil {
		t.Fatal(err)
	}
	f.client = NewClient(f.brEP, dbID, f.brokerKP, f.brokerCred, f.serverCred)
	return f
}

func mustKey(seed int64) *keys.KeyPair {
	kp, err := keys.KeyPairFrom(rand.New(rand.NewSource(seed)), keys.DefaultRSABits)
	if err != nil {
		panic(err)
	}
	return kp
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestRemoteAuthenticate(t *testing.T) {
	f := newRemoteFixture(t)
	groups, err := f.client.Authenticate(ctx(t), "alice", "s3cret")
	if err != nil {
		t.Fatalf("remote Authenticate: %v", err)
	}
	if len(groups) != 1 || groups[0] != "math" {
		t.Fatalf("groups = %v", groups)
	}
}

func TestRemoteAuthenticateFailure(t *testing.T) {
	f := newRemoteFixture(t)
	if _, err := f.client.Authenticate(ctx(t), "alice", "wrong"); err != ErrAuth {
		t.Fatalf("remote bad password = %v, want ErrAuth", err)
	}
	if _, err := f.client.Authenticate(ctx(t), "ghost", "x"); err != ErrAuth {
		t.Fatalf("remote unknown user = %v, want ErrAuth", err)
	}
}

func TestRemoteGroups(t *testing.T) {
	f := newRemoteFixture(t)
	groups, err := f.client.Groups(ctx(t), "alice")
	if err != nil {
		t.Fatalf("remote Groups: %v", err)
	}
	if len(groups) != 1 || groups[0] != "math" {
		t.Fatalf("groups = %v", groups)
	}
	if _, err := f.client.Groups(ctx(t), "ghost"); err != ErrNoUser {
		t.Fatalf("remote Groups(ghost) = %v, want ErrNoUser", err)
	}
}

func TestRemoteRejectsNonBroker(t *testing.T) {
	f := newRemoteFixture(t)
	// A client peer (not a broker) with a valid *client* credential tries
	// to query the DB directly.
	clKP := mustKey(305)
	clID, _ := keys.CBID(clKP.Public())
	clCred, err := cred.Issue(f.adminKP, f.adminCred.Subject, clID, "eve", cred.RoleClient, clKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clEP, err := endpoint.NewService(f.net, clID)
	if err != nil {
		t.Fatal(err)
	}
	evil := NewClient(clEP, f.dbEP.PeerID(), clKP, clCred, f.serverCred)
	if _, err := evil.Authenticate(ctx(t), "alice", "s3cret"); err == nil {
		t.Fatal("database answered a non-broker caller")
	}
}

func TestRemoteRejectsSelfIssuedBroker(t *testing.T) {
	f := newRemoteFixture(t)
	// Fake broker with a self-issued "broker" credential.
	evilKP := mustKey(306)
	evilID, _ := keys.CBID(evilKP.Public())
	evilCred, err := cred.Issue(evilKP, evilID, evilID, "fake-broker", cred.RoleBroker, evilKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	evilEP, err := endpoint.NewService(f.net, evilID)
	if err != nil {
		t.Fatal(err)
	}
	evil := NewClient(evilEP, f.dbEP.PeerID(), evilKP, evilCred, f.serverCred)
	if _, err := evil.Authenticate(ctx(t), "alice", "s3cret"); err == nil {
		t.Fatal("database trusted a self-issued broker credential")
	}
}

func TestRemotePasswordNeverOnWireInClear(t *testing.T) {
	f := newRemoteFixture(t)
	f.store.Register("bob", "ultra-secret-passphrase")
	var sniffed []byte
	f.net.AddTap(func(p simnet.Packet) {
		sniffed = append(sniffed, p.Payload...)
	})
	if _, err := f.client.Authenticate(ctx(t), "bob", "ultra-secret-passphrase"); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sniffed, []byte("ultra-secret-passphrase")) {
		t.Fatal("password visible on the wire to the database")
	}
}

func TestRemoteReplayRejected(t *testing.T) {
	f := newRemoteFixture(t)
	// Capture the broker's request frame, then replay it verbatim.
	var captured []byte
	f.net.AddTap(func(p simnet.Packet) {
		if p.To == simnet.NodeID(f.dbEP.PeerID()) && captured == nil {
			captured = append([]byte(nil), p.Payload...)
		}
	})
	if _, err := f.client.Authenticate(ctx(t), "alice", "s3cret"); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no frame captured")
	}
	// Replay from an attacker node.
	attacker, err := endpoint.NewService(f.net, "urn:jxta:cbid-attacker")
	if err != nil {
		t.Fatal(err)
	}
	_ = attacker
	got := make(chan *endpoint.Message, 1)
	// Replay raw: parse the captured frame, re-send its elements as a
	// fresh request from the attacker and watch the response.
	msg, err := endpoint.ParseMessage(captured)
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := attacker.Request(reqCtx, f.dbEP.PeerID(), ServiceName, msg)
	if err != nil {
		t.Fatalf("replay transport failed: %v", err)
	}
	got <- resp
	body, _ := resp.Get(elemBody)
	if !bytes.Contains(body, []byte("<OK>0</OK>")) {
		t.Fatalf("replayed request was accepted: %s", body)
	}
}

func TestRemoteResponseAuthenticity(t *testing.T) {
	f := newRemoteFixture(t)
	// A response signed by the wrong key must be rejected by the client.
	otherKP := mustKey(307)
	fakeCred := f.serverCred.Clone()
	fakeCred.Key = otherKP.Public()
	badClient := NewClient(f.brEP, f.dbEP.PeerID(), f.brokerKP, f.brokerCred, fakeCred)
	// badClient encrypts to the wrong key too, so the server can't even
	// decrypt; either way the call must fail.
	if _, err := badClient.Authenticate(ctx(t), "alice", "s3cret"); err == nil {
		t.Fatal("client accepted response under mismatched server credential")
	}
}
