package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column report, the output format of the
// cmd/bench* binaries.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (for plotting Figure 2).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
