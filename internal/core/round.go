package core

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Group fan-out round sealing. The paper's secureMsgGroupPeer is N
// independent secureMsgPeer sends, so a 100-member round costs 100 RSA
// signatures — the flat ~385 µs/recipient the §5-style benchmarks
// record. The round format amortizes that: ONE header (timestamp +
// nonce + group + body digest + recipient-set binding) is signed once
// per round, the block is encrypted once under a fresh AES-256 content
// key, and the only per-recipient work is wrapping that key to each
// member (a public-key operation, ~10× cheaper than a signature).
//
// Wire layout (mode byte ModeGroup, then):
//
//	u32 wrap count
//	per wrap: 32-byte recipient key fingerprint | u32 length | RSA-OAEP wrapped CEK
//	u32 nonce length | AES-GCM nonce
//	AES-GCM ciphertext of ( u32 header length | header XML | raw body )
//
// Every recipient receives the same bytes; OpenGroup locates its wrap by
// key fingerprint. The header is inside the ciphertext, so the round
// leaks no more metadata than ModeFull does.
//
// Shared-header semantics (see SECURITY.md): the signature covers one
// header for the whole round, so recipients share the timestamp and
// nonce, and the signature alone no longer binds the message to a single
// recipient. Two mechanisms restore the per-recipient guarantees:
//
//   - the signed Recipients element is a digest of the ordered recipient
//     key fingerprints, so a signed header replayed against a different
//     recipient set fails OpenGroup (ErrRoundBinding);
//   - the signed Nonce is single-use per sender; receivers track it in
//     their ReplayGuard (CheckRound), so a round member re-encrypting
//     the same signed header to the same set is rejected as a replay.

// ErrRoundBinding is returned when a round header's signed recipient-set
// digest does not match the key wraps on the wire.
var ErrRoundBinding = errors.New("core: round header does not match recipient set")

// roundNonceSize is the length of the single-use round nonce.
const roundNonceSize = 16

// maxRoundRecipients bounds the wrap count parsed from the wire, so a
// hostile length prefix cannot force a huge allocation.
const maxRoundRecipients = 4096

// roundHeaderName is the XML element name of the signed round header.
const roundHeaderName = "SecureRound"

// recipientsDigest binds the round header to the ordered recipient set:
// SHA-256 over the concatenated recipient key fingerprints.
func recipientsDigest(fps [][32]byte) []byte {
	buf := make([]byte, 0, len(fps)*32)
	for i := range fps {
		buf = append(buf, fps[i][:]...)
	}
	return keys.SHA256(buf)
}

// SealGroup produces one secure envelope for a whole fan-out round:
// sign-then-encrypt with a single header signature regardless of the
// recipient count. The returned wire is identical for every recipient —
// callers send the same bytes to each member and each member's OpenGroup
// unwraps its own key. Senders that hand the round to a relay for
// per-recipient slicing use SealGroupDetached instead (same sealing, a
// choice of assemblies).
func SealGroup(signer *keys.KeyPair, sender keys.PeerID, group string, body []byte, recipients []*keys.PublicKey) (*Sealed, error) {
	d, err := SealGroupDetached(signer, sender, group, body, recipients)
	if err != nil {
		return nil, err
	}
	return &Sealed{Mode: ModeGroup, wire: d.Wire()}, nil
}

// nowUTCRFC3339 renders the signed round timestamp.
func nowUTCRFC3339() string { return time.Now().UTC().Format(time.RFC3339Nano) }

// roundWire is the parsed (but not yet decrypted) group round.
type roundWire struct {
	fps      [][32]byte
	wraps    [][]byte
	gcmNonce []byte
	ct       []byte
}

func parseRoundWire(payload []byte) (*roundWire, error) {
	if len(payload) < 4 {
		return nil, ErrEnvelope
	}
	n := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	if n == 0 || n > maxRoundRecipients {
		return nil, ErrEnvelope
	}
	rw := &roundWire{fps: make([][32]byte, n), wraps: make([][]byte, n)}
	for i := uint32(0); i < n; i++ {
		if len(payload) < 36 {
			return nil, ErrEnvelope
		}
		copy(rw.fps[i][:], payload[:32])
		wl := binary.BigEndian.Uint32(payload[32:36])
		payload = payload[36:]
		if uint32(len(payload)) < wl {
			return nil, ErrEnvelope
		}
		rw.wraps[i] = payload[:wl:wl]
		payload = payload[wl:]
	}
	if len(payload) < 4 {
		return nil, ErrEnvelope
	}
	nl := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	if nl > 64 || uint32(len(payload)) < nl {
		return nil, ErrEnvelope
	}
	rw.gcmNonce = payload[:nl:nl]
	rw.ct = payload[nl:]
	return rw, nil
}

// OpenGroup decrypts and parses a group round envelope addressed (among
// others) to own. Beyond the checks Open performs, it enforces the round
// semantics: the signed recipient-set digest must match the key wraps on
// the wire, and — when a ReplayGuard is supplied — the signed round
// nonce must be fresh for the sender (single use within the guard's
// window). The header signature itself is deferred to VerifySignature,
// exactly as in the unicast path.
func OpenGroup(own *keys.KeyPair, wire []byte, guard *ReplayGuard) (*Opened, error) {
	if len(wire) < 2 || Mode(wire[0]) != ModeGroup {
		return nil, ErrEnvelope
	}
	if own == nil {
		return nil, ErrNotRecipient
	}
	rw, err := parseRoundWire(wire[1:])
	if err != nil {
		return nil, err
	}
	ownFP, err := own.Public().Fingerprint()
	if err != nil {
		return nil, err
	}
	var wrap []byte
	for i := range rw.fps {
		if rw.fps[i] == ownFP {
			wrap = rw.wraps[i]
			break
		}
	}
	if wrap == nil {
		return nil, ErrNotRecipient
	}
	cek, err := own.UnwrapKey(wrap)
	if err != nil {
		return nil, ErrNotRecipient
	}
	block, err := keys.AEADOpen(cek, rw.gcmNonce, rw.ct)
	if err != nil {
		return nil, ErrEnvelope
	}
	header, body, err := unpackBlock(block, roundHeaderName)
	if err != nil {
		return nil, err
	}
	wantDigest, err := base64.StdEncoding.DecodeString(header.ChildText("BodyDigest"))
	if err != nil {
		return nil, ErrEnvelope
	}
	if !keys.ConstantTimeEqual(keys.SHA256(body), wantDigest) {
		return nil, ErrBodyDigest
	}
	// The signed Recipients digest must cover exactly the wraps carried
	// by this wire: a signed header spliced onto a different recipient
	// set dies here, before any signature check succeeds on it.
	wantRecipients, err := base64.StdEncoding.DecodeString(header.ChildText("Recipients"))
	if err != nil {
		return nil, ErrEnvelope
	}
	if !keys.ConstantTimeEqual(recipientsDigest(rw.fps), wantRecipients) {
		return nil, ErrRoundBinding
	}
	return finishRoundOpen(header, body, ModeGroup, guard)
}

// finishRoundOpen is the tail shared by OpenGroup and OpenSlice once the
// recipient binding specific to the wire form has been checked: parse
// the signed timestamp, nonce and signature out of the round header,
// build the Opened, and (when a guard is supplied) enforce the
// single-use round nonce.
func finishRoundOpen(header *xmldoc.Element, body []byte, mode Mode, guard *ReplayGuard) (*Opened, error) {
	sentAt, err := time.Parse(time.RFC3339Nano, header.ChildText("Time"))
	if err != nil {
		return nil, ErrEnvelope
	}
	nonce, err := base64.StdEncoding.DecodeString(header.ChildText("Nonce"))
	if err != nil || len(nonce) != roundNonceSize {
		return nil, ErrEnvelope
	}
	sigText := header.ChildText("Signature")
	if sigText == "" {
		// Rounds are always signed; an unsigned round header is malformed,
		// not a degraded mode.
		return nil, ErrNoSignature
	}
	sig, err := base64.StdEncoding.DecodeString(sigText)
	if err != nil {
		return nil, ErrEnvelope
	}
	o := &Opened{
		Mode:     mode,
		Sender:   keys.PeerID(header.ChildText("Sender")),
		Group:    header.ChildText("Group"),
		Body:     body,
		SentAt:   sentAt,
		Nonce:    nonce,
		sig:      sig,
		sigDoc:   header.CanonicalSkip("Signature"),
		headerEl: header,
	}
	if guard != nil {
		if err := guard.CheckRound(o.Sender, o.Nonce, o.SentAt); err != nil {
			return nil, err
		}
	}
	return o, nil
}
