// Package backoff implements capped exponential backoff with full
// jitter, shared by every retry surface in the overlay: the client's
// resilient call wrapper, its session-resume loop, and the relay's
// redelivery timer. One implementation keeps the retry behaviour — and
// therefore the load a fleet of recovering peers puts on a broker —
// analyzable in one place: attempt n waits a uniformly random duration
// in (0, min(Cap, Base·2ⁿ)], so synchronized failures (a partition
// heals, a broker restarts) decorrelate instead of thundering back in
// lockstep.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Policy is a capped exponential backoff schedule. The zero value is
// not useful; see DefaultPolicy.
type Policy struct {
	// Base is the ceiling of the first delay (attempt 0).
	Base time.Duration
	// Cap bounds the ceiling growth: min(Cap, Base·2ⁿ).
	Cap time.Duration
}

// DefaultPolicy is the schedule retry surfaces use unless configured:
// 100ms doubling to a 5s cap keeps first retries snappy on transient
// blips while a persistent outage settles at one attempt per ~2.5s
// (full-jitter mean) per caller.
var DefaultPolicy = Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second}

// Ceiling returns the capped exponential ceiling for an attempt
// number, overflow-safe for any attempt.
func (p Policy) Ceiling(attempt int) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = DefaultPolicy.Base
	}
	if cap <= 0 {
		cap = DefaultPolicy.Cap
	}
	d := base
	for i := 0; i < attempt; i++ {
		if d >= cap || d > cap/2 {
			return cap
		}
		d *= 2
	}
	if d > cap {
		return cap
	}
	return d
}

// Delay draws the full-jitter delay for an attempt number: uniform in
// (0, Ceiling(attempt)], using the caller-supplied unit-interval
// source (nil = the global math/rand source). A small floor (1/16 of
// the ceiling) keeps pathological draws from turning into busy-loops.
func (p Policy) Delay(attempt int, unit func() float64) time.Duration {
	if unit == nil {
		unit = rand.Float64
	}
	c := p.Ceiling(attempt)
	d := time.Duration(unit() * float64(c))
	if floor := c / 16; d < floor {
		d = floor
	}
	return d
}

// MaxDelaysWithin bounds how many consecutive delays the schedule can
// possibly fit into an interval when every draw lands on its minimum
// (the 1/16-of-ceiling floor). Chaos gates use it to convict a
// reconnect storm: more attempts than this bound means the backoff was
// not honored.
func (p Policy) MaxDelaysWithin(interval time.Duration) int {
	var total time.Duration
	for n := 0; ; n++ {
		total += p.Ceiling(n) / 16
		if total > interval {
			return n + 1
		}
		if n > 1<<20 { // Base=0 defense; unreachable with sane policies
			return n
		}
	}
}

// Source is a concurrency-safe stateful backoff: Next draws the delay
// for the current attempt and advances it; Reset reports success and
// rewinds the schedule. Seeded sources are deterministic, which the
// chaos scenarios rely on.
type Source struct {
	policy Policy

	mu      sync.Mutex
	rnd     *rand.Rand
	attempt int
}

// NewSource builds a seeded source over a policy.
func NewSource(p Policy, seed int64) *Source {
	return &Source{policy: p, rnd: rand.New(rand.NewSource(seed))}
}

// Next returns the delay for the current attempt and advances the
// attempt counter.
func (s *Source) Next() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.policy.Delay(s.attempt, s.rnd.Float64)
	s.attempt++
	return d
}

// Attempt reports how many delays have been drawn since the last Reset.
func (s *Source) Attempt() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempt
}

// Reset rewinds the schedule after a success.
func (s *Source) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempt = 0
}

// Unit returns a concurrency-safe unit-interval draw bound to the
// source's seeded generator, for callers that track attempt counts
// themselves (the relay keeps per-peer counters under its own lock).
func (s *Source) Unit() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rnd.Float64()
}
