package pipes

import (
	"context"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
)

func testNet(t *testing.T) *simnet.Network {
	t.Helper()
	n := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(n.Close)
	return n
}

func svc(t *testing.T, n *simnet.Network, id string) *endpoint.Service {
	t.Helper()
	s, err := endpoint.NewService(n, keys.PeerID(id))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func unicastAdv(peer keys.PeerID, id string) *advert.Pipe {
	return &advert.Pipe{PipeID: id, PipeType: advert.PipeUnicast, Name: "t", PeerID: peer, Group: "g"}
}

func TestUnicastSendReceive(t *testing.T) {
	n := testNet(t)
	a := svc(t, n, "urn:jxta:a")
	b := svc(t, n, "urn:jxta:b")

	adv := unicastAdv(b.PeerID(), "urn:jxta:pipe-1")
	in, err := CreateInputPipe(b, adv, 8)
	if err != nil {
		t.Fatalf("CreateInputPipe: %v", err)
	}
	defer in.Close()

	out, err := ResolveOutputPipe(a, adv)
	if err != nil {
		t.Fatalf("ResolveOutputPipe: %v", err)
	}
	if err := out.Send(endpoint.NewMessage().AddString("body", "ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d, err := in.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if d.From != a.PeerID() {
		t.Fatalf("From = %q", d.From)
	}
	if body, _ := d.Msg.GetString("body"); body != "ping" {
		t.Fatalf("body = %q", body)
	}
}

func TestCreateInputPipeOwnership(t *testing.T) {
	n := testNet(t)
	a := svc(t, n, "urn:jxta:a")
	// Advertisement names a different peer: binding must fail.
	adv := unicastAdv("urn:jxta:other", "urn:jxta:pipe-1")
	if _, err := CreateInputPipe(a, adv, 1); err == nil {
		t.Fatal("CreateInputPipe bound a foreign advertisement")
	}
	if _, err := CreateInputPipe(nil, nil, 1); err == nil {
		t.Fatal("CreateInputPipe accepted nils")
	}
}

func TestResolveTypeChecks(t *testing.T) {
	n := testNet(t)
	a := svc(t, n, "urn:jxta:a")
	prop := &advert.Pipe{PipeID: "urn:jxta:pipe-p", PipeType: advert.PipePropagate, PeerID: a.PeerID(), Group: "g"}
	if _, err := ResolveOutputPipe(a, prop); err == nil {
		t.Fatal("ResolveOutputPipe accepted propagate advertisement")
	}
	uni := unicastAdv(a.PeerID(), "urn:jxta:pipe-u")
	if _, err := ResolvePropagatePipe(a, uni, MemberProviderFunc(func(string) []keys.PeerID { return nil })); err == nil {
		t.Fatal("ResolvePropagatePipe accepted unicast advertisement")
	}
	if _, err := ResolvePropagatePipe(a, prop, nil); err == nil {
		t.Fatal("ResolvePropagatePipe accepted nil provider")
	}
}

func TestPropagateFanOut(t *testing.T) {
	n := testNet(t)
	sender := svc(t, n, "urn:jxta:s")
	m1 := svc(t, n, "urn:jxta:m1")
	m2 := svc(t, n, "urn:jxta:m2")

	adv := &advert.Pipe{PipeID: "urn:jxta:pipe-prop", PipeType: advert.PipePropagate, PeerID: sender.PeerID(), Group: "g"}
	in1, err := CreateInputPipe(m1, &advert.Pipe{PipeID: adv.PipeID, PipeType: advert.PipePropagate, PeerID: m1.PeerID(), Group: "g"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := CreateInputPipe(m2, &advert.Pipe{PipeID: adv.PipeID, PipeType: advert.PipePropagate, PeerID: m2.PeerID(), Group: "g"}, 4)
	if err != nil {
		t.Fatal(err)
	}

	members := []keys.PeerID{sender.PeerID(), m1.PeerID(), m2.PeerID()}
	out, err := ResolvePropagatePipe(sender, adv, MemberProviderFunc(func(g string) []keys.PeerID {
		if g != "g" {
			t.Errorf("provider queried for group %q", g)
		}
		return members
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(endpoint.NewMessage().AddString("body", "all")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, in := range []*InputPipe{in1, in2} {
		d, err := in.Receive(ctx)
		if err != nil {
			t.Fatalf("Receive: %v", err)
		}
		if body, _ := d.Msg.GetString("body"); body != "all" {
			t.Fatalf("body = %q", body)
		}
	}
}

func TestPropagateSkipsSender(t *testing.T) {
	n := testNet(t)
	sender := svc(t, n, "urn:jxta:s")
	selfAdv := &advert.Pipe{PipeID: "urn:jxta:pipe-x", PipeType: advert.PipePropagate, PeerID: sender.PeerID(), Group: "g"}
	selfIn, err := CreateInputPipe(sender, selfAdv, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ResolvePropagatePipe(sender, selfAdv, MemberProviderFunc(func(string) []keys.PeerID {
		return []keys.PeerID{sender.PeerID()}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(endpoint.NewMessage()); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case <-selfIn.Chan():
		t.Fatal("propagate pipe echoed to sender")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestInputPipeBufferDrop(t *testing.T) {
	n := testNet(t)
	a := svc(t, n, "urn:jxta:a")
	b := svc(t, n, "urn:jxta:b")
	adv := unicastAdv(b.PeerID(), "urn:jxta:pipe-1")
	in, err := CreateInputPipe(b, adv, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ResolveOutputPipe(a, adv)
	for i := 0; i < 10; i++ {
		if err := out.Send(endpoint.NewMessage().AddString("i", "x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	n.Close() // flush deliveries
	// Only the buffer capacity may be queued; the rest were dropped
	// without blocking the network.
	if got := len(in.Chan()); got > 2 {
		t.Fatalf("buffered %d messages, capacity 2", got)
	}
}

func TestInputPipeClose(t *testing.T) {
	n := testNet(t)
	a := svc(t, n, "urn:jxta:a")
	b := svc(t, n, "urn:jxta:b")
	adv := unicastAdv(b.PeerID(), "urn:jxta:pipe-1")
	in, err := CreateInputPipe(b, adv, 2)
	if err != nil {
		t.Fatal(err)
	}
	in.Close()
	in.Close() // idempotent
	ctx := context.Background()
	if _, err := in.Receive(ctx); err != ErrClosed {
		t.Fatalf("Receive after Close = %v, want ErrClosed", err)
	}
	// Messages sent after close are discarded.
	out, _ := ResolveOutputPipe(a, adv)
	if err := out.Send(endpoint.NewMessage()); err != nil {
		t.Fatalf("Send: %v", err)
	}
}

func TestReceiveContextCancel(t *testing.T) {
	n := testNet(t)
	b := svc(t, n, "urn:jxta:b")
	adv := unicastAdv(b.PeerID(), "urn:jxta:pipe-1")
	in, err := CreateInputPipe(b, adv, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := in.Receive(ctx); err == nil {
		t.Fatal("Receive returned without a message")
	}
}

func TestAdvertisementAccessors(t *testing.T) {
	n := testNet(t)
	b := svc(t, n, "urn:jxta:b")
	adv := unicastAdv(b.PeerID(), "urn:jxta:pipe-1")
	in, err := CreateInputPipe(b, adv, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if in.Advertisement().PipeID != adv.PipeID {
		t.Fatal("input advertisement mismatch")
	}
	out, _ := ResolveOutputPipe(b, adv)
	if out.Advertisement().PipeID != adv.PipeID {
		t.Fatal("output advertisement mismatch")
	}
}
