// Package waituntil replaces hand-rolled deadline/sleep polling loops
// in tests and tools with one condition waiter. Two shapes:
//
//   - polled: True/Must re-check the condition on an adaptive interval
//     (tight at first for fast conditions, backing off so a slow
//     condition does not spin a core for its whole timeout);
//   - event-driven: On re-checks only when the caller's signal channel
//     fires, with a coarse fallback tick in case a signal was dropped.
//
// Both report false instead of panicking on timeout, so call sites can
// fail with a message carrying the freshest state.
package waituntil

import "time"

// pollFloor and pollCeil bound the adaptive polling interval.
const (
	pollFloor = time.Millisecond
	pollCeil  = 16 * time.Millisecond
)

// True polls cond until it returns true or the timeout elapses,
// reporting whether the condition was reached. cond runs on the
// calling goroutine; it is never invoked again after True returns.
func True(timeout time.Duration, cond func() bool) bool {
	if cond() {
		return true
	}
	deadline := time.Now().Add(timeout)
	interval := pollFloor
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return cond()
		}
		if interval > remaining {
			interval = remaining
		}
		time.Sleep(interval)
		if cond() {
			return true
		}
		if interval < pollCeil {
			interval *= 2
		}
	}
}

// T is the slice of testing.TB that Must needs; taking an interface
// keeps the package importable outside tests.
type T interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Must is True with a test failure on timeout.
func Must(t T, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !True(timeout, cond) {
		t.Fatalf(format, args...)
	}
}

// On waits event-driven: cond is re-checked every time signal fires
// (e.g. an events.Collector notification channel), with a coarse
// fallback tick so a coalesced or dropped signal cannot hang the wait.
// Reports whether the condition was reached before the timeout.
func On(signal <-chan struct{}, timeout time.Duration, cond func() bool) bool {
	if cond() {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	fallback := time.NewTicker(pollCeil)
	defer fallback.Stop()
	for {
		select {
		case <-signal:
		case <-fallback.C:
		case <-deadline.C:
			return cond()
		}
		if cond() {
			return true
		}
	}
}
