// Package jxtaoverlay is a from-scratch Go reproduction of
// "A Security-aware Approach to JXTA-Overlay Primitives"
// (Arnedo-Moreno, Matsuo, Barolli, Xhafa — ICPP Workshops 2009,
// DOI 10.1109/ICPPW.2009.13).
//
// The repository contains the complete JXTA-Overlay middleware substrate
// (XML advertisements, pipes, endpoint messaging, discovery, brokers,
// the central user database, group/file/statistics/executable
// primitives) plus the paper's contribution: the security extension in
// internal/core (secureConnection, secureLogin, secureMsgPeer,
// secureMsgPeerGroup, XMLdsig-signed advertisements, and the secured
// executable primitives the paper lists as further work).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's evaluation. The
// benchmarks in bench_test.go regenerate every number the paper reports.
//
// # Fast path
//
// The sign/verify pipeline — the cost center the paper measures — is
// built for repetition (see PERF.md for architecture and numbers):
//
//   - internal/xmldoc memoizes canonical bytes per element, invalidated
//     by every mutator through parent backlinks. After the first
//     Canonical() call a tree must only be changed via the mutator
//     methods (Add, AddText, SetText, SetAttr, RemoveChildren), and the
//     returned bytes are shared and read-only.
//   - Element.CanonicalSkip serializes a document minus selected direct
//     children, so XMLdsig verification never deep-copies a document to
//     detach its Signature.
//   - internal/xdsig.VerifyCache and the cred.TrustStore signature cache
//     memoize verification verdicts in digest-keyed, TTL-bounded LRUs
//     (internal/lru); credential expiry is enforced on every lookup and
//     failures are never cached. internal/core and internal/broker
//     thread these caches through messaging, advertisement acceptance
//     and the (parallel) group fan-out.
//   - Group fan-out seals ONE signed round per send (core.SealGroup);
//     with the broker relay (internal/relay, core.EnableBrokerRelay)
//     the sender uploads the round once and the broker slices it into
//     per-recipient Merkle-bound wires (core.SliceRound/OpenSlice),
//     delivering immediately to online members and queueing — bounded,
//     TTL-expiring, drained on login — for offline ones. The relay
//     holds no keys and no plaintext; SECURITY.md states what a
//     compromised relay can and cannot do.
package jxtaoverlay
