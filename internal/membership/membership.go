// Package membership implements JXTA's membership service abstraction —
// the core service that manages identity within a peer group.
//
// The paper's §3 criticism of stock JXTA security is that it forces the
// Personal Secure Environment (PSE) implementation, with Java keystores
// as the only credential store. This package keeps the service
// pluggable: None reproduces the original JXTA-Overlay behaviour (plain
// username-derived identities, no keys), while PSE provides a
// keystore-backed identity with crypto-based identifiers and
// broker-issued credentials — without constraining the rest of the
// architecture.
package membership

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Identity is the local peer's established identity.
type Identity struct {
	// PeerID is the overlay identifier (a CBID when keys exist).
	PeerID keys.PeerID
	// Name is the human alias (the end-user's username).
	Name string
	// Keys holds the key pair; nil for plain (None) identities.
	Keys *keys.KeyPair
	// Credential is the broker-issued credential, once obtained.
	Credential *cred.Credential
	// Chain holds the credential plus intermediates up to the anchor.
	Chain []*cred.Credential
}

// Secure reports whether the identity can sign and decrypt.
func (id *Identity) Secure() bool { return id != nil && id.Keys != nil }

// Service establishes and tracks the local identity.
type Service interface {
	// Join establishes an identity for the given alias.
	Join(alias string) (*Identity, error)
	// Current returns the established identity, or nil.
	Current() *Identity
	// Resign forgets the current identity.
	Resign()
}

// ErrNotJoined is returned when an identity is required but absent.
var ErrNotJoined = errors.New("membership: no identity established")

// --- None membership (original JXTA-Overlay behaviour) ---

// None derives a peer ID from the alias and holds no keys: the
// configuration the paper attacks.
type None struct {
	mu sync.Mutex
	id *Identity
}

// NewNone returns the plain membership service.
func NewNone() *None { return &None{} }

// Join implements Service.
func (n *None) Join(alias string) (*Identity, error) {
	if alias == "" {
		return nil, errors.New("membership: empty alias")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = &Identity{PeerID: keys.LegacyPeerID(alias), Name: alias}
	return n.id, nil
}

// Current implements Service.
func (n *None) Current() *Identity {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// Resign implements Service.
func (n *None) Resign() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = nil
}

// --- PSE membership (keystore-backed) ---

// PSE is the keystore-backed membership service. Key pairs are created
// at first join (paper §4.1: "at boot time, a key pair is created") and
// optionally persisted to a directory; broker-issued credentials are
// attached after secureLogin.
type PSE struct {
	mu   sync.Mutex
	dir  string // "" = memory only
	bits int
	id   *Identity
	// store caches identities per alias within the process.
	store map[string]*Identity
}

// NewPSE creates a PSE service. dir may be empty for an in-memory
// keystore; bits selects the RSA key size (0 = default).
func NewPSE(dir string, bits int) *PSE {
	if bits == 0 {
		bits = keys.DefaultRSABits
	}
	return &PSE{dir: dir, bits: bits, store: make(map[string]*Identity)}
}

// Join implements Service: it loads the alias's key pair from the
// keystore or creates and persists a fresh one, and derives the CBID.
func (p *PSE) Join(alias string) (*Identity, error) {
	if alias == "" || strings.ContainsAny(alias, "/\\") {
		return nil, fmt.Errorf("membership: invalid alias %q", alias)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.store[alias]; ok {
		p.id = id
		return id, nil
	}
	kp, err := p.loadKey(alias)
	if err != nil {
		return nil, err
	}
	if kp == nil {
		kp, err = keys.KeyPairBits(p.bits)
		if err != nil {
			return nil, err
		}
		if err := p.saveKey(alias, kp); err != nil {
			return nil, err
		}
	}
	pid, err := keys.CBID(kp.Public())
	if err != nil {
		return nil, err
	}
	id := &Identity{PeerID: pid, Name: alias, Keys: kp}
	if c, chain, err := p.loadCred(alias); err == nil && c != nil {
		id.Credential = c
		id.Chain = chain
	}
	p.store[alias] = id
	p.id = id
	return id, nil
}

// Current implements Service.
func (p *PSE) Current() *Identity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.id
}

// Resign implements Service. The keystore entry is kept; only the active
// identity is cleared.
func (p *PSE) Resign() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.id = nil
}

// SetCredential attaches a broker-issued credential (and its chain) to
// the current identity and persists it.
func (p *PSE) SetCredential(c *cred.Credential, chain ...*cred.Credential) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.id == nil {
		return ErrNotJoined
	}
	if !c.Key.Equal(p.id.Keys.Public()) {
		return errors.New("membership: credential key does not match identity key")
	}
	p.id.Credential = c
	p.id.Chain = append([]*cred.Credential{c}, chain...)
	return p.saveCred(p.id.Name, p.id.Chain)
}

func (p *PSE) keyPath(alias string) string  { return filepath.Join(p.dir, alias+".key.pem") }
func (p *PSE) credPath(alias string) string { return filepath.Join(p.dir, alias+".cred.xml") }

func (p *PSE) loadKey(alias string) (*keys.KeyPair, error) {
	if p.dir == "" {
		return nil, nil
	}
	data, err := os.ReadFile(p.keyPath(alias))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("membership: keystore read: %w", err)
	}
	return keys.ParseKeyPairPEM(data)
}

func (p *PSE) saveKey(alias string, kp *keys.KeyPair) error {
	if p.dir == "" {
		return nil
	}
	if err := os.MkdirAll(p.dir, 0o700); err != nil {
		return fmt.Errorf("membership: keystore dir: %w", err)
	}
	pemBytes, err := kp.MarshalPEM()
	if err != nil {
		return err
	}
	return os.WriteFile(p.keyPath(alias), pemBytes, 0o600)
}

func (p *PSE) loadCred(alias string) (*cred.Credential, []*cred.Credential, error) {
	if p.dir == "" {
		return nil, nil, nil
	}
	data, err := os.ReadFile(p.credPath(alias))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	doc, err := xmldoc.ParseBytes(data)
	if err != nil {
		return nil, nil, err
	}
	var chain []*cred.Credential
	for _, cd := range doc.ChildrenNamed(cred.ElementName) {
		c, err := cred.Parse(cd)
		if err != nil {
			return nil, nil, err
		}
		chain = append(chain, c)
	}
	if len(chain) == 0 {
		return nil, nil, nil
	}
	return chain[0], chain, nil
}

func (p *PSE) saveCred(alias string, chain []*cred.Credential) error {
	if p.dir == "" {
		return nil
	}
	doc := xmldoc.New("CredentialChain", "")
	for _, c := range chain {
		cd, err := c.Document()
		if err != nil {
			return err
		}
		doc.Add(cd)
	}
	return os.WriteFile(p.credPath(alias), doc.Canonical(), 0o600)
}
