package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jxtaoverlay/internal/keys"
)

func addRec(to, payload string) Record {
	return Record{
		To: keys.PeerID("peer-" + to[:1]), From: "sender", Group: "g",
		Payload: []byte(payload),
		Expires: time.Unix(2000, 0),
	}
}

func openT(t *testing.T, opts Options) (*Log, []Record, RecoveryStats) {
	t.Helper()
	l, recovered, stats, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, recovered, stats
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindAdd, Seq: 1, To: "bob", From: "alice", Group: "math",
			Payload: []byte("hello"), Expires: time.Unix(0, 123456789), Forwarded: true},
		{Kind: KindAdd, Seq: 2, To: "", From: "", Group: "", Payload: nil, Expires: time.Time{}},
		{Kind: KindAck, Seq: 1, Reason: AckDelivered},
		{Kind: KindAck, Seq: 9, Reason: AckDropped},
	}
	for _, rec := range recs {
		enc, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d", n, len(enc))
		}
		re, err := AppendRecord(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("re-encode differs:\n%x\n%x", enc, re)
		}
		// Nanosecond fidelity is the codec contract (a zero time.Time has
		// no defined UnixNano and the relay always stamps Expires first).
		if got.Kind == KindAdd && got.Expires.UnixNano() != rec.Expires.UnixNano() {
			t.Fatalf("expires %v != %v", got.Expires, rec.Expires)
		}
	}
}

func TestDecodeRejectsTamper(t *testing.T) {
	enc, err := AppendRecord(nil, Record{Kind: KindAdd, Seq: 7, To: "bob",
		From: "alice", Group: "g", Payload: []byte("payload"), Expires: time.Unix(5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Any single bit flip in the body must fail the CRC.
	for i := headerSize; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x04
		if _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorruptRecord", i, err)
		}
	}
	// Any truncation must read as a torn record, not garbage.
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeRecord(enc[:n]); !errors.Is(err, ErrShortRecord) {
			t.Fatalf("truncation to %d: err = %v, want ErrShortRecord", n, err)
		}
	}
}

func TestRecoveryRebuildsLiveSet(t *testing.T) {
	dir := t.TempDir()
	l, recovered, _ := openT(t, Options{Dir: dir})
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(recovered))
	}
	s1, err := l.AppendAdd(addRec("bob", "m0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAdd(addRec("bob", "m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAdd(addRec("carol", "m2")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAck(s1, AckDelivered); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, recovered, stats := openT(t, Options{Dir: dir})
	if len(recovered) != 2 || stats.Live != 2 {
		t.Fatalf("recovered %d live (stats %+v), want 2", len(recovered), stats)
	}
	if stats.Acked != 1 {
		t.Fatalf("acked = %d, want 1", stats.Acked)
	}
	// Enqueue order survives: m1 (seq 2) before m2 (seq 3).
	if string(recovered[0].Payload) != "m1" || string(recovered[1].Payload) != "m2" {
		t.Fatalf("recovered order: %q, %q", recovered[0].Payload, recovered[1].Payload)
	}
	if recovered[1].To != "peer-c" {
		t.Fatalf("recovered To = %q", recovered[1].To)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, Options{Dir: dir})
	if _, err := l.AppendAdd(addRec("bob", "kept")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAdd(addRec("bob", "torn-away")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := TearFinalRecord(dir); err != nil {
		t.Fatal(err)
	}

	l2, recovered, stats := openT(t, Options{Dir: dir})
	if len(recovered) != 1 || string(recovered[0].Payload) != "kept" {
		t.Fatalf("recovered = %v", recovered)
	}
	if stats.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The tail was truncated: appending now must yield a log that
	// replays cleanly, with no garbage between records.
	if _, err := l2.AppendAdd(addRec("bob", "after-tear")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recovered, stats = openT(t, Options{Dir: dir})
	if len(recovered) != 2 || stats.TornBytes != 0 {
		t.Fatalf("post-repair recovery: %d live, stats %+v", len(recovered), stats)
	}
}

func TestRecoveryStopsAtFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, Options{Dir: dir})
	if _, err := l.AppendAdd(addRec("bob", "kept")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAdd(addRec("bob", "flipped")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := FlipTailCRC(dir); err != nil {
		t.Fatal(err)
	}
	_, recovered, _ := openT(t, Options{Dir: dir})
	if len(recovered) != 1 || string(recovered[0].Payload) != "kept" {
		t.Fatalf("recovered = %v, want only the intact record", recovered)
	}
}

func TestCompactionReclaimsAckedRecords(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment budget so every few records trigger a compaction.
	l, _, _ := openT(t, Options{Dir: dir, SegmentBytes: 512})
	var live []Seq
	for i := 0; i < 50; i++ {
		seq, err := l.AppendAdd(addRec("bob", "payload-that-occupies-some-bytes"))
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			live = append(live, seq) // keep every fifth
			continue
		}
		if err := l.AppendAck(seq, AckDelivered); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentIndex() == 0 {
		t.Fatal("segment never rotated")
	}
	l.Close()

	// Disk usage reflects the live set, not the 50 adds + 40 acks.
	var total int64
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("compaction left %d segments, want 1", len(entries))
	}
	for _, e := range entries {
		fi, _ := os.Stat(filepath.Join(dir, e.Name()))
		total += fi.Size()
	}
	if total > 2048 {
		t.Fatalf("compacted log is %d bytes for %d live records", total, len(live))
	}
	_, recovered, _ := openT(t, Options{Dir: dir})
	if len(recovered) != len(live) {
		t.Fatalf("recovered %d, want %d", len(recovered), len(live))
	}
	for i, rec := range recovered {
		if rec.Seq != live[i] {
			t.Fatalf("recovered seq %d, want %d", rec.Seq, live[i])
		}
	}
}

func TestSeqContinuesAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, Options{Dir: dir})
	last, _ := l.AppendAdd(addRec("bob", "m0"))
	l.Close()
	l2, _, _ := openT(t, Options{Dir: dir})
	defer l2.Close()
	next, err := l2.AppendAdd(addRec("bob", "m1"))
	if err != nil {
		t.Fatal(err)
	}
	if next <= last {
		t.Fatalf("seq did not advance across recovery: %d then %d", last, next)
	}
}

func TestInjectedCrashIsSticky(t *testing.T) {
	for _, p := range []FaultPoint{BeforeAppend, AfterAppend, BeforeSync, AfterSync} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			armed := false
			l, _, _ := openT(t, Options{Dir: dir, Faults: func(fp FaultPoint) error {
				if armed && fp == p {
					return ErrInjected
				}
				return nil
			}})
			if _, err := l.AppendAdd(addRec("bob", "durable")); err != nil {
				t.Fatal(err)
			}
			armed = true
			_, err := l.AppendAdd(addRec("bob", "at-crash"))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("append at crash point: %v", err)
			}
			// The log is dead: every later operation fails.
			if _, err := l.AppendAdd(addRec("bob", "after")); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("append after crash: %v", err)
			}
			if err := l.Sync(); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("sync after crash: %v", err)
			}
			l.Close()

			_, recovered, _ := openT(t, Options{Dir: dir})
			// The pre-crash record was fsynced and must survive; the
			// record at the crash point survives only if its bytes were
			// written before the fault fired.
			want := map[FaultPoint]int{BeforeAppend: 1, AfterAppend: 2, BeforeSync: 2, AfterSync: 2}[p]
			if len(recovered) != want {
				t.Fatalf("recovered %d records after %s crash, want %d", len(recovered), p, want)
			}
			if string(recovered[0].Payload) != "durable" {
				t.Fatalf("fsynced record lost: %q", recovered[0].Payload)
			}
		})
	}
}

func TestBatchedSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	var syncs int
	l, _, _ := openT(t, Options{Dir: dir, SyncInterval: 5 * time.Millisecond,
		Faults: func(fp FaultPoint) error {
			if fp == AfterSync {
				syncs++
			}
			return nil
		}})
	for i := 0; i < 10; i++ {
		if _, err := l.AppendAdd(addRec("bob", "m")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		dirty, n := l.dirty, syncs
		l.mu.Unlock()
		if !dirty && n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	l.mu.Lock()
	n := syncs
	l.mu.Unlock()
	if n >= 10 {
		t.Fatalf("%d fsyncs for 10 appends: batching is not batching", n)
	}
	l.Close()
	_, recovered, _ := openT(t, Options{Dir: dir})
	if len(recovered) != 10 {
		t.Fatalf("recovered %d, want 10", len(recovered))
	}
}
