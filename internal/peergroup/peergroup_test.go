package peergroup

import (
	"sync"
	"testing"

	"jxtaoverlay/internal/keys"
)

func TestCreateGetJoin(t *testing.T) {
	r := NewRegistry()
	g, err := r.Create("urn:jxta:group-1", "lab", "lab group", "urn:jxta:cbid-1")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := r.Create("urn:jxta:group-2", "lab", "", ""); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	if _, err := r.Create("x", "", "", ""); err == nil {
		t.Fatal("empty-name Create succeeded")
	}
	got, err := r.Get("lab")
	if err != nil || got != g {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("Get(nope) succeeded")
	}
	if err := r.Join("lab", "urn:jxta:cbid-2", "alice"); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !g.Has("urn:jxta:cbid-2") || g.Size() != 1 {
		t.Fatal("membership not recorded")
	}
	if err := r.Join("nope", "urn:jxta:cbid-2", "alice"); err == nil {
		t.Fatal("Join to missing group succeeded")
	}
}

func TestLeave(t *testing.T) {
	r := NewRegistry()
	r.Create("g1", "lab", "", "")
	r.Join("lab", "p1", "alice")
	if err := r.Leave("lab", "p1"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := r.Leave("lab", "p1"); err == nil {
		t.Fatal("second Leave succeeded")
	}
	if err := r.Leave("nope", "p1"); err == nil {
		t.Fatal("Leave from missing group succeeded")
	}
}

func TestOverlappingMembership(t *testing.T) {
	r := NewRegistry()
	r.Create("g1", "math", "", "")
	r.Create("g2", "physics", "", "")
	r.Create("g3", "art", "", "")
	r.Join("math", "p1", "alice")
	r.Join("physics", "p1", "alice")
	r.Join("physics", "p2", "bob")
	r.Join("art", "p3", "carol")

	got := r.GroupsOf("p1")
	if len(got) != 2 || got[0] != "math" || got[1] != "physics" {
		t.Fatalf("GroupsOf(p1) = %v", got)
	}
	if !r.SameGroup("p1", "p2") {
		t.Fatal("p1/p2 share physics")
	}
	if r.SameGroup("p1", "p3") {
		t.Fatal("p1/p3 share nothing")
	}
}

func TestLeaveAll(t *testing.T) {
	r := NewRegistry()
	r.Create("g1", "math", "", "")
	r.Create("g2", "physics", "", "")
	r.Join("math", "p1", "alice")
	r.Join("physics", "p1", "alice")
	r.LeaveAll("p1")
	if len(r.GroupsOf("p1")) != 0 {
		t.Fatal("LeaveAll left memberships behind")
	}
}

func TestMembersSorted(t *testing.T) {
	r := NewRegistry()
	r.Create("g", "lab", "", "")
	r.Join("lab", "pC", "c")
	r.Join("lab", "pA", "a")
	r.Join("lab", "pB", "b")
	g, _ := r.Get("lab")
	m := g.Members()
	if len(m) != 3 || m[0].PeerID != "pA" || m[2].PeerID != "pC" {
		t.Fatalf("Members = %v", m)
	}
	ids := g.MemberIDs()
	if len(ids) != 3 || ids[1] != "pB" {
		t.Fatalf("MemberIDs = %v", ids)
	}
}

func TestListSorted(t *testing.T) {
	r := NewRegistry()
	r.Create("1", "zeta", "", "")
	r.Create("2", "alpha", "", "")
	got := r.List()
	if len(got) != 2 || got[0] != "alpha" {
		t.Fatalf("List = %v", got)
	}
}

func TestEnsure(t *testing.T) {
	r := NewRegistry()
	g1 := r.Ensure("id1", "lab", "", "p")
	g2 := r.Ensure("id2", "lab", "", "p")
	if g1 != g2 {
		t.Fatal("Ensure created duplicate group")
	}
	if g1.ID != "id1" {
		t.Fatal("Ensure overwrote existing group")
	}
}

func TestConcurrentJoinLeave(t *testing.T) {
	r := NewRegistry()
	r.Create("g", "lab", "", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pid := keys.PeerID("p" + string(rune('a'+i)))
			for j := 0; j < 50; j++ {
				r.Join("lab", pid, "x")
				r.GroupsOf(pid)
				r.Leave("lab", pid)
			}
		}(i)
	}
	wg.Wait()
}
