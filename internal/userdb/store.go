// Package userdb implements JXTA-Overlay's central database: the single
// entity storing user configuration (username, password and group
// membership). Only brokers may access it, to check end-user
// authentication attempts and organize users into groups; an
// administrator registers users out of band.
//
// The store keeps salted PBKDF2 password hashes, never plaintext. The
// remote half of the package (server.go) exposes the store over the
// simulated network with the trust topology the paper assumes: requests
// are accepted only from brokers holding administrator-issued
// credentials, over an encrypted, mutually signed exchange (the paper's
// "secure backend database connection").
package userdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"jxtaoverlay/internal/keys"
)

// Password hashing parameters. Iterations are modest because every login
// benchmark pays this cost; the parameter is recorded with each record
// so it can be raised without invalidating old hashes.
const (
	defaultIterations = 2048
	saltLen           = 16
	hashLen           = 32
)

// Errors returned by the store.
var (
	// ErrAuth is deliberately uniform across "no such user", "bad
	// password" and "disabled" so the store does not leak which part
	// failed.
	ErrAuth   = errors.New("userdb: authentication failed")
	ErrExists = errors.New("userdb: user already exists")
	ErrNoUser = errors.New("userdb: no such user")
)

// User is one registered end user.
type User struct {
	Username   string   `json:"username"`
	Salt       []byte   `json:"salt"`
	Hash       []byte   `json:"hash"`
	Iterations int      `json:"iterations"`
	Groups     []string `json:"groups"`
	Disabled   bool     `json:"disabled"`
}

// Store is the in-memory (optionally file-backed) user database.
type Store struct {
	mu    sync.RWMutex
	users map[string]*User
	iters int
}

// NewStore returns an empty store with default hashing parameters.
func NewStore() *Store { return NewStoreIter(defaultIterations) }

// NewStoreIter returns an empty store hashing with the given PBKDF2
// iteration count.
func NewStoreIter(iterations int) *Store {
	if iterations < 1 {
		iterations = 1
	}
	return &Store{users: make(map[string]*User), iters: iterations}
}

// Register adds a user with the given password and initial groups.
func (s *Store) Register(username, password string, groups ...string) error {
	if username == "" {
		return errors.New("userdb: empty username")
	}
	salt, err := keys.RandomBytes(saltLen)
	if err != nil {
		return err
	}
	u := &User{
		Username:   username,
		Salt:       salt,
		Hash:       keys.PBKDF2([]byte(password), salt, s.iters, hashLen),
		Iterations: s.iters,
		Groups:     append([]string(nil), groups...),
	}
	sort.Strings(u.Groups)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[username]; ok {
		return fmt.Errorf("%w: %q", ErrExists, username)
	}
	s.users[username] = u
	return nil
}

// Authenticate checks a username/password pair and returns the user's
// groups. All failures return ErrAuth.
func (s *Store) Authenticate(username, password string) ([]string, error) {
	s.mu.RLock()
	u, ok := s.users[username]
	s.mu.RUnlock()
	if !ok {
		// Burn comparable time to avoid a trivial user-enumeration oracle.
		keys.PBKDF2([]byte(password), make([]byte, saltLen), s.iters, hashLen)
		return nil, ErrAuth
	}
	got := keys.PBKDF2([]byte(password), u.Salt, u.Iterations, hashLen)
	if !keys.ConstantTimeEqual(got, u.Hash) || u.Disabled {
		return nil, ErrAuth
	}
	return append([]string(nil), u.Groups...), nil
}

// SetPassword replaces the user's password.
func (s *Store) SetPassword(username, password string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[username]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	salt, err := keys.RandomBytes(saltLen)
	if err != nil {
		return err
	}
	u.Salt = salt
	u.Iterations = s.iters
	u.Hash = keys.PBKDF2([]byte(password), salt, s.iters, hashLen)
	return nil
}

// SetDisabled toggles the user's disabled flag.
func (s *Store) SetDisabled(username string, disabled bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[username]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	u.Disabled = disabled
	return nil
}

// AddToGroup adds the user to a group (idempotent).
func (s *Store) AddToGroup(username, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[username]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	for _, g := range u.Groups {
		if g == group {
			return nil
		}
	}
	u.Groups = append(u.Groups, group)
	sort.Strings(u.Groups)
	return nil
}

// RemoveFromGroup removes the user from a group (idempotent).
func (s *Store) RemoveFromGroup(username, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[username]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	for i, g := range u.Groups {
		if g == group {
			u.Groups = append(u.Groups[:i], u.Groups[i+1:]...)
			return nil
		}
	}
	return nil
}

// Groups returns the user's group list.
func (s *Store) Groups(username string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[username]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	return append([]string(nil), u.Groups...), nil
}

// Usernames lists all registered usernames, sorted.
func (s *Store) Usernames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.users))
	for name := range s.users {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	users := make([]*User, 0, len(s.users))
	for _, u := range s.users {
		users = append(users, u)
	}
	s.mu.RUnlock()
	sort.Slice(users, func(i, j int) bool { return users[i].Username < users[j].Username })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(users)
}

// Load replaces the store contents from JSON produced by Save.
func (s *Store) Load(r io.Reader) error {
	var users []*User
	if err := json.NewDecoder(r).Decode(&users); err != nil {
		return fmt.Errorf("userdb: load: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users = make(map[string]*User, len(users))
	for _, u := range users {
		if u.Username == "" || len(u.Salt) == 0 || len(u.Hash) == 0 || u.Iterations < 1 {
			return fmt.Errorf("userdb: load: malformed record %q", u.Username)
		}
		s.users[u.Username] = u
	}
	return nil
}

// SaveFile persists the store to a file with restrictive permissions.
func (s *Store) SaveFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Save(f)
}

// LoadFile restores the store from a file written by SaveFile.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
