// Package cred implements the credential scheme of the security
// extension (paper §4.1): XML credentials binding a peer identifier and
// human name to a public key, signed by an issuer.
//
// Three kinds of credentials exist in a JXTA-Overlay deployment:
//
//   - the administrator's self-signed credential Cred_Adm^Adm, the trust
//     anchor every peer is provisioned with;
//   - broker credentials Cred_Br^Adm, issued by the administrator, which
//     secureConnection uses to tell legitimate brokers from fakes;
//   - client credentials Cred_Cl^Br, issued by a broker at secureLogin,
//     which clients use as proof of identity until expiration.
package cred

import (
	"encoding/base64"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Role describes what kind of entity a credential certifies.
type Role string

// Credential roles.
const (
	RoleAdmin    Role = "admin"
	RoleBroker   Role = "broker"
	RoleClient   Role = "client"
	RoleDatabase Role = "database"
)

// ElementName is the XML element name of serialized credentials.
const ElementName = "Credential"

// Errors returned by verification.
var (
	ErrBadSignature = errors.New("cred: credential signature invalid")
	ErrExpired      = errors.New("cred: credential expired or not yet valid")
	ErrUntrusted    = errors.New("cred: issuer not trusted")
	ErrRole         = errors.New("cred: unexpected credential role")
)

// Credential is the paper's Cred_i^j: subject i's identity and public
// key, vouched for by issuer j's signature.
type Credential struct {
	// Subject is the peer ID the credential certifies (a CBID for
	// secure peers).
	Subject keys.PeerID
	// SubjectName is the human name: the end-user's username for client
	// credentials, a deployment name for brokers and the administrator.
	SubjectName string
	// Role states what the subject is allowed to act as.
	Role Role
	// Issuer is the peer ID of the signing entity.
	Issuer keys.PeerID
	// Key is the subject's public key.
	Key *keys.PublicKey
	// NotBefore/NotAfter bound the validity window.
	NotBefore time.Time
	NotAfter  time.Time
	// Signature is the issuer's signature over the canonical body.
	Signature []byte

	// memo caches the canonical body and its digest. Credentials are
	// immutable once built by Issue or Parse (Issue fills Signature in
	// after signing, which the body excludes), so the memo never goes
	// stale; code constructing Credential values by hand must not mutate
	// identity fields afterwards.
	memo atomic.Pointer[credMemo]
}

type credMemo struct {
	body   []byte
	digest []byte // SHA-256 of body, the verification-cache key material
}

// body returns the canonical signing input: the credential document
// without its Signature child.
func (c *Credential) body() ([]byte, error) {
	m, err := c.bodyMemo()
	if err != nil {
		return nil, err
	}
	return m.body, nil
}

func (c *Credential) bodyMemo() (*credMemo, error) {
	if m := c.memo.Load(); m != nil {
		return m, nil
	}
	doc, err := c.document(false)
	if err != nil {
		return nil, err
	}
	body := doc.Canonical()
	m := &credMemo{body: body, digest: keys.SHA256(body)}
	c.memo.Store(m)
	return m, nil
}

// Digest returns the SHA-256 digest of the canonical credential body
// (signature excluded). It identifies the credential's content in the
// verification caches.
func (c *Credential) Digest() ([]byte, error) {
	m, err := c.bodyMemo()
	if err != nil {
		return nil, err
	}
	return m.digest, nil
}

func (c *Credential) document(withSig bool) (*xmldoc.Element, error) {
	if c.Key == nil {
		return nil, errors.New("cred: credential has no key")
	}
	keyB64, err := c.Key.MarshalBase64()
	if err != nil {
		return nil, err
	}
	doc := xmldoc.New(ElementName, "")
	doc.AddText("Subject", string(c.Subject))
	doc.AddText("SubjectName", c.SubjectName)
	doc.AddText("Role", string(c.Role))
	doc.AddText("Issuer", string(c.Issuer))
	doc.AddText("Key", keyB64)
	// Nanosecond precision: besides fidelity, it guarantees re-issued
	// credentials differ even within the same second (renewal relies on
	// this; RSASSA-PKCS1-v1_5 is deterministic).
	doc.AddText("NotBefore", c.NotBefore.UTC().Format(time.RFC3339Nano))
	doc.AddText("NotAfter", c.NotAfter.UTC().Format(time.RFC3339Nano))
	if withSig {
		doc.AddText("Signature", base64.StdEncoding.EncodeToString(c.Signature))
	}
	return doc, nil
}

// Document serializes the credential, signature included.
func (c *Credential) Document() (*xmldoc.Element, error) {
	return c.document(true)
}

// Clone returns a copy of the credential with no memoized state. Use it
// to derive modified variants (re-issuing tools, tests); Credential
// values must never be copied or mutated directly once in use.
func (c *Credential) Clone() *Credential {
	return &Credential{
		Subject:     c.Subject,
		SubjectName: c.SubjectName,
		Role:        c.Role,
		Issuer:      c.Issuer,
		Key:         c.Key,
		NotBefore:   c.NotBefore,
		NotAfter:    c.NotAfter,
		Signature:   append([]byte(nil), c.Signature...),
	}
}

// Parse reads a credential from its XML form. The signature is not
// verified; call Verify or use a TrustStore.
func Parse(doc *xmldoc.Element) (*Credential, error) {
	if doc == nil || doc.Name != ElementName {
		return nil, fmt.Errorf("cred: not a %s element", ElementName)
	}
	key, err := keys.ParsePublicBase64(doc.ChildText("Key"))
	if err != nil {
		return nil, fmt.Errorf("cred: key: %w", err)
	}
	nb, err := time.Parse(time.RFC3339Nano, doc.ChildText("NotBefore"))
	if err != nil {
		return nil, fmt.Errorf("cred: NotBefore: %w", err)
	}
	na, err := time.Parse(time.RFC3339Nano, doc.ChildText("NotAfter"))
	if err != nil {
		return nil, fmt.Errorf("cred: NotAfter: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(doc.ChildText("Signature"))
	if err != nil || len(sig) == 0 {
		return nil, errors.New("cred: missing or malformed Signature")
	}
	return &Credential{
		Subject:     keys.PeerID(doc.ChildText("Subject")),
		SubjectName: doc.ChildText("SubjectName"),
		Role:        Role(doc.ChildText("Role")),
		Issuer:      keys.PeerID(doc.ChildText("Issuer")),
		Key:         key,
		NotBefore:   nb,
		NotAfter:    na,
		Signature:   sig,
	}, nil
}

// Issue creates a credential for subject signed by the issuer's key.
func Issue(issuer *keys.KeyPair, issuerID keys.PeerID, subject keys.PeerID, subjectName string, role Role, subjectKey *keys.PublicKey, validity time.Duration) (*Credential, error) {
	now := time.Now().UTC()
	c := &Credential{
		Subject:     subject,
		SubjectName: subjectName,
		Role:        role,
		Issuer:      issuerID,
		Key:         subjectKey,
		NotBefore:   now.Add(-time.Minute), // clock-skew grace
		NotAfter:    now.Add(validity),
	}
	body, err := c.body()
	if err != nil {
		return nil, err
	}
	sig, err := issuer.Sign(body)
	if err != nil {
		return nil, err
	}
	c.Signature = sig
	return c, nil
}

// SelfSigned creates the administrator's trust-anchor credential
// Cred_Adm^Adm.
func SelfSigned(kp *keys.KeyPair, name string, validity time.Duration) (*Credential, error) {
	id, err := keys.CBID(kp.Public())
	if err != nil {
		return nil, err
	}
	return Issue(kp, id, id, name, RoleAdmin, kp.Public(), validity)
}

// Verify checks the credential signature against the issuer's public key
// and the validity window against now.
func (c *Credential) Verify(issuerKey *keys.PublicKey, now time.Time) error {
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return ErrExpired
	}
	body, err := c.body()
	if err != nil {
		return err
	}
	if err := issuerKey.Verify(body, c.Signature); err != nil {
		return ErrBadSignature
	}
	return nil
}

// VerifyCBID checks the crypto-based binding between the credential's
// subject ID and its key. Only meaningful for CBID subjects.
func (c *Credential) VerifyCBID() error {
	return keys.VerifyCBID(c.Subject, c.Key)
}

// Equal reports whether two credentials are byte-identical in canonical
// form.
func (c *Credential) Equal(o *Credential) bool {
	if c == nil || o == nil {
		return c == o
	}
	a, err1 := c.Document()
	b, err2 := o.Document()
	if err1 != nil || err2 != nil {
		return false
	}
	return a.Equal(b)
}
