// Package attack implements the adversaries the paper's security
// analysis considers (§2.3): passive eavesdroppers on the wire,
// advertisement forgers, login replayers, and fake brokers reached via
// redirected traffic (the DNS-spoofing scenario).
//
// The package is a test harness, not an exploit kit: each adversary
// exercises one documented JXTA-Overlay vulnerability so the test suite
// can demonstrate that the original primitives are vulnerable and the
// secure primitives resist.
package attack

import (
	"bytes"
	"context"
	"encoding/binary"
	"sync"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/xmldoc"
)

// Eavesdropper passively records every frame on the fabric — the "data
// may be easily eavesdropped" threat.
type Eavesdropper struct {
	mu     sync.Mutex
	frames []simnet.Packet
}

// NewEavesdropper taps the network.
func NewEavesdropper(net *simnet.Network) *Eavesdropper {
	e := &Eavesdropper{}
	net.AddTap(func(p simnet.Packet) {
		e.mu.Lock()
		e.frames = append(e.frames, p)
		e.mu.Unlock()
	})
	return e
}

// SawString reports whether the needle appeared in any captured frame —
// e.g. a password crossing the wire in the clear.
func (e *Eavesdropper) SawString(needle string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := []byte(needle)
	for _, f := range e.frames {
		if bytes.Contains(f.Payload, n) {
			return true
		}
	}
	return false
}

// FramesTo returns copies of every frame addressed to the given node, in
// capture order — the raw material for replay attacks.
func (e *Eavesdropper) FramesTo(to simnet.NodeID) [][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out [][]byte
	for _, f := range e.frames {
		if f.To == to {
			out = append(out, append([]byte(nil), f.Payload...))
		}
	}
	return out
}

// FrameCount reports how many frames were captured.
func (e *Eavesdropper) FrameCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.frames)
}

// RawNode is an attacker-controlled attachment point that can inject
// arbitrary frames — including verbatim replays of captured traffic.
type RawNode struct {
	id  simnet.NodeID
	net *simnet.Network

	mu       sync.Mutex
	received [][]byte
}

// NewRawNode attaches an attacker node to the fabric.
func NewRawNode(net *simnet.Network, id simnet.NodeID) (*RawNode, error) {
	r := &RawNode{id: id, net: net}
	if err := net.Attach(id, func(p simnet.Packet) {
		r.mu.Lock()
		r.received = append(r.received, append([]byte(nil), p.Payload...))
		r.mu.Unlock()
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Replay injects a previously captured frame verbatim.
func (r *RawNode) Replay(to simnet.NodeID, frame []byte) error {
	return r.net.Send(r.id, to, frame)
}

// Received returns the frames delivered to the attacker node.
func (r *RawNode) Received() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.received))
	copy(out, r.received)
	return out
}

// ForgePipeAdv fabricates a pipe advertisement that claims to be the
// victim's group input pipe but directs traffic to the attacker — the
// man-in-the-middle redirect enabled by unverified advertisements.
func ForgePipeAdv(victim keys.PeerID, attackerPipe string, attacker keys.PeerID, group string) *xmldoc.Element {
	forged := &advert.Pipe{
		PipeID:   attackerPipe,
		PipeType: advert.PipeUnicast,
		Name:     "msg/" + group + "/" + string(victim), // looks legitimate
		PeerID:   attacker,                              // ...but lands at the attacker
		Group:    group,
	}
	doc, err := forged.Document()
	if err != nil {
		panic(err) // all fields are set; cannot fail
	}
	return doc
}

// ForgePresence fabricates a presence advertisement for an arbitrary
// peer — the "any legitimate user may forge advertisements" threat.
func ForgePresence(victim keys.PeerID, name, group, status string) *xmldoc.Element {
	p := &advert.Presence{PeerID: victim, Name: name, Group: group, Status: status, Seen: time.Now()}
	doc, err := p.Document()
	if err != nil {
		panic(err)
	}
	return doc
}

// SpoofedPipeMessage fabricates a raw endpoint frame that delivers a
// text message on the victim's group pipe with a forged source element —
// the "no source authenticity" threat. The element names mirror the
// endpoint layer's wire vocabulary.
func SpoofedPipeMessage(claimedFrom, to keys.PeerID, pipeID, group, body string) []byte {
	msg := endpoint.NewMessage().
		AddString("jxta:src", string(claimedFrom)).
		AddString("jxta:dst", string(to)).
		AddString("jxta:svc", "jxta:pipe:"+pipeID).
		AddString(proto.ElemBody, body).
		AddString(proto.ElemGroup, group)
	return msg.Marshal()
}

// ForgeRound acts as a malicious group-round recipient: having opened a
// round legitimately, the attacker holds the validly signed round header
// (core.Opened.HeaderXML) and the plaintext body, and re-encrypts them
// under a fresh content key wrapped to an arbitrary recipient set — the
// "shared authenticated header" abuse the round format must resist. The
// wire layout mirrors core.SealGroup exactly; only the signature cannot
// be re-minted, which is what the recipient-set binding and single-use
// nonce checks exploit.
func ForgeRound(headerXML, body []byte, recipients []*keys.PublicKey) ([]byte, error) {
	cek, err := keys.NewContentKey()
	if err != nil {
		return nil, err
	}
	block := make([]byte, 0, 4+len(headerXML)+len(body))
	block = binary.BigEndian.AppendUint32(block, uint32(len(headerXML)))
	block = append(block, headerXML...)
	block = append(block, body...)
	nonce, ct, err := keys.AEADSeal(cek, block)
	if err != nil {
		return nil, err
	}
	wire := []byte{byte(core.ModeGroup)}
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(recipients)))
	for _, r := range recipients {
		fp, err := r.Fingerprint()
		if err != nil {
			return nil, err
		}
		wrap, err := r.WrapKey(cek)
		if err != nil {
			return nil, err
		}
		wire = append(wire, fp[:]...)
		wire = binary.BigEndian.AppendUint32(wire, uint32(len(wrap)))
		wire = append(wire, wrap...)
	}
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(nonce)))
	wire = append(wire, nonce...)
	return append(wire, ct...), nil
}

// ForgeSlice acts as a malicious relay colluding with a round insider:
// the insider legitimately opened its cut of the round and hands the
// relay the validly signed header (core.Opened.HeaderXML) plus the
// plaintext; the relay re-encrypts them under a fresh content key
// wrapped to an arbitrary target — including peers the sender never
// addressed — and cuts a single-recipient ModeSlice wire for it. The
// layout mirrors core's slice wire exactly; what the pair cannot mint
// is a header whose signed SliceRoot covers the new wrap, which is
// precisely the binding OpenSlice enforces.
func ForgeSlice(headerXML, body []byte, target *keys.PublicKey) ([]byte, error) {
	cek, err := keys.NewContentKey()
	if err != nil {
		return nil, err
	}
	block := make([]byte, 0, 4+len(headerXML)+len(body))
	block = binary.BigEndian.AppendUint32(block, uint32(len(headerXML)))
	block = append(block, headerXML...)
	block = append(block, body...)
	nonce, ct, err := keys.AEADSeal(cek, block)
	if err != nil {
		return nil, err
	}
	fp, err := target.Fingerprint()
	if err != nil {
		return nil, err
	}
	wrap, err := target.WrapKey(cek)
	if err != nil {
		return nil, err
	}
	wire := []byte{byte(core.ModeSlice)}
	wire = binary.BigEndian.AppendUint32(wire, 1) // recipient count
	wire = binary.BigEndian.AppendUint32(wire, 0) // leaf index
	wire = append(wire, fp[:]...)
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(wrap)))
	wire = append(wire, wrap...)
	wire = append(wire, 0) // empty proof: for n=1 the leaf IS the root
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(nonce)))
	wire = append(wire, nonce...)
	return append(wire, ct...), nil
}

// NewFakeBroker stands up a broker that accepts every login — the
// credential-harvesting endpoint of the DNS-spoofing scenario. It uses
// the same well-known name as the target broker; nothing in the original
// protocol lets a client tell them apart.
func NewFakeBroker(net *simnet.Network, wellKnownName string, id keys.PeerID, harvested chan<- [2]string) (*broker.Broker, error) {
	return broker.New(broker.Config{
		Name:   wellKnownName,
		PeerID: id,
		Net:    net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, user, pass string) ([]string, error) {
			select {
			case harvested <- [2]string{user, pass}:
			default:
			}
			return []string{"default"}, nil // accept everyone
		}),
	})
}
