// Benchmarks regenerating the paper's evaluation (§5) and the ablations
// called out in DESIGN.md. Each Benchmark maps to one experiment:
//
//	E1  BenchmarkJoinPlain / BenchmarkJoinSecure   — §5 join overhead (≈81.76% in the paper)
//	F2  BenchmarkMsgPeerPlain / BenchmarkMsgPeerSecure — Figure 2 (overhead vs size)
//	A1  BenchmarkJoinSecureKeySize                 — RSA modulus ablation
//	A2  BenchmarkEnvelopeMode                      — envelope mode ablation
//	A3  BenchmarkMsgPeerGroupSecure                — group fan-out ablation
//	A4  BenchmarkSignedAdvertisement               — signed-advertisement pipeline
//	P4  BenchmarkRelayWireBytes                    — O(N²)→O(N) round wire bytes
//	P5  BenchmarkRelayDelivery                     — relay slice+route+drain under churn
//	P6  BenchmarkRelayDrainDurable                 — same drain on the crash-safe WAL (persistence tax)
//
// The cmd/benchjoin and cmd/benchmsg binaries print the same experiments
// as paper-style tables with modeled wire time; the benchmarks here
// report raw compute cost per operation.
package jxtaoverlay_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/bench"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/parallel"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/xdsig"
	"jxtaoverlay/internal/xmldoc"
)

func newEnv(b *testing.B, opts ...bench.EnvOption) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	return env
}

// --- E1: network join ---

func BenchmarkJoinPlain(b *testing.B) {
	env := newEnv(b)
	alias, password, err := env.AddUser()
	if err != nil {
		b.Fatal(err)
	}
	cl, err := env.PlainClient(alias)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Connect(ctx, env.Broker.PeerID()); err != nil {
			b.Fatal(err)
		}
		if err := cl.Login(ctx, password); err != nil {
			b.Fatal(err)
		}
		if err := cl.Logout(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinSecure(b *testing.B) {
	env := newEnv(b)
	alias, password, err := env.AddUser()
	if err != nil {
		b.Fatal(err)
	}
	sc, err := env.SecureClient(alias, core.ModeFull)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.SecureConnection(ctx, env.Broker.PeerID()); err != nil {
			b.Fatal(err)
		}
		if err := sc.SecureLogin(ctx, password); err != nil {
			b.Fatal(err)
		}
		if err := sc.Logout(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: key-size ablation on the secure join ---

func BenchmarkJoinSecureKeySize(b *testing.B) {
	for _, bits := range []int{1024, 2048} {
		b.Run(fmt.Sprintf("rsa%d", bits), func(b *testing.B) {
			env := newEnv(b, bench.WithKeyBits(bits))
			alias, password, err := env.AddUser()
			if err != nil {
				b.Fatal(err)
			}
			sc, err := env.SecureClient(alias, core.ModeFull)
			if err != nil {
				b.Fatal(err)
			}
			defer sc.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sc.SecureConnection(ctx, env.Broker.PeerID()); err != nil {
					b.Fatal(err)
				}
				if err := sc.SecureLogin(ctx, password); err != nil {
					b.Fatal(err)
				}
				if err := sc.Logout(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F2: message overhead vs size ---

var f2Sizes = []int{16, 256, 4096, 65536, 1 << 20}

type msgBenchPair struct {
	sendPlain  func(text string) error
	sendSecure func(text string) error
	waitPlain  chan struct{}
	waitSecure chan struct{}
}

func newMsgBenchPair(b *testing.B, env *bench.Env, mode core.Mode) *msgBenchPair {
	b.Helper()
	ctx := context.Background()
	mk := func() (alias, pw string) {
		alias, pw, err := env.AddUser()
		if err != nil {
			b.Fatal(err)
		}
		return alias, pw
	}
	aliasA, pwA := mk()
	aliasB, pwB := mk()
	pa, err := env.PlainClient(aliasA)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(pa.Close)
	pb, err := env.PlainClient(aliasB)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(pb.Close)
	must := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	must(pa.Connect(ctx, env.Broker.PeerID()))
	must(pa.Login(ctx, pwA))
	must(pb.Connect(ctx, env.Broker.PeerID()))
	must(pb.Login(ctx, pwB))

	aliasC, pwC := mk()
	aliasD, pwD := mk()
	sa, err := env.SecureClient(aliasC, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sa.Close)
	sb, err := env.SecureClient(aliasD, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sb.Close)
	must(sa.SecureConnection(ctx, env.Broker.PeerID()))
	must(sa.SecureLogin(ctx, pwC))
	must(sb.SecureConnection(ctx, env.Broker.PeerID()))
	must(sb.SecureLogin(ctx, pwD))

	p := &msgBenchPair{
		waitPlain:  make(chan struct{}, 64),
		waitSecure: make(chan struct{}, 64),
	}
	pb.Bus().Subscribe(events.MessageReceived, func(events.Event) { p.waitPlain <- struct{}{} })
	sb.Bus().Subscribe(events.SecureMessage, func(events.Event) { p.waitSecure <- struct{}{} })
	p.sendPlain = func(text string) error {
		if err := pa.SendMsgPeer(ctx, pb.PeerID(), "bench", text); err != nil {
			return err
		}
		<-p.waitPlain
		return nil
	}
	p.sendSecure = func(text string) error {
		if err := sa.SecureMsgPeer(ctx, sb.PeerID(), "bench", text); err != nil {
			return err
		}
		<-p.waitSecure
		return nil
	}
	// Warm both paths (pipe resolution).
	must(p.sendPlain("warm"))
	must(p.sendSecure("warm"))
	return p
}

func benchPayload(size int) string {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	return string(buf)
}

func BenchmarkMsgPeerPlain(b *testing.B) {
	env := newEnv(b)
	pair := newMsgBenchPair(b, env, core.ModeFull)
	for _, size := range f2Sizes {
		text := benchPayload(size)
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := pair.sendPlain(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMsgPeerSecure(b *testing.B) {
	env := newEnv(b)
	pair := newMsgBenchPair(b, env, core.ModeFull)
	for _, size := range f2Sizes {
		text := benchPayload(size)
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := pair.sendSecure(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A2: envelope mode ablation (pure crypto path, no network) ---

func BenchmarkEnvelopeMode(b *testing.B) {
	sender, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	recv, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	body := []byte(benchPayload(4096))
	for _, mode := range []core.Mode{core.ModeFull, core.ModeSign, core.ModeEncrypt} {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(4096)
			for i := 0; i < b.N; i++ {
				sealed, err := core.Seal(sealSigner(sender, mode), "urn:jxta:cbid-s", "g", body, recv.Public(), mode)
				if err != nil {
					b.Fatal(err)
				}
				opened, err := core.Open(recv, sealed.Bytes())
				if err != nil {
					b.Fatal(err)
				}
				if opened.Signed() {
					if err := opened.VerifySignature(sender.Public()); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func sealSigner(kp *keys.KeyPair, mode core.Mode) *keys.KeyPair {
	if mode == core.ModeEncrypt {
		return nil
	}
	return kp
}

// --- A3: group fan-out ---

func BenchmarkMsgPeerGroupSecure(b *testing.B) {
	env := newEnv(b)
	ctx := context.Background()
	for _, size := range []int{2, 4, 8} {
		group := fmt.Sprintf("bench-fan%d", size)
		var sender *core.SecureClient
		for i := 0; i < size; i++ {
			alias, pw, err := env.AddUser(group)
			if err != nil {
				b.Fatal(err)
			}
			sc, err := env.SecureClient(alias, core.ModeFull)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(sc.Close)
			if err := sc.SecureConnection(ctx, env.Broker.PeerID()); err != nil {
				b.Fatal(err)
			}
			if err := sc.SecureLogin(ctx, pw); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				sender = sc
			}
		}
		b.Run(fmt.Sprintf("members%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sender.SecureMsgPeerGroup(ctx, group, "fanout"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- P1: canonicalization fast path ---

// canonBenchTree mirrors the shape of a signed pipe advertisement — the
// document the hot paths canonicalize most often.
func canonBenchTree() *xmldoc.Element {
	doc := xmldoc.New("PipeAdvertisement", "")
	doc.AddText("Id", "urn:jxta:pipe-0123456789abcdef0123456789abcdef")
	doc.AddText("Type", "JxtaUnicast")
	doc.AddText("Name", "bench")
	doc.AddText("PeerID", "urn:jxta:cbid-0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	doc.AddText("Group", "bench")
	sig := xmldoc.New("Signature", "")
	si := xmldoc.New("SignedInfo", "")
	si.AddText("CanonicalizationMethod", "jxta-overlay-c14n-v1")
	si.AddText("SignatureMethod", "rsa-sha256-pkcs1v15")
	si.AddText("DigestMethod", "sha256")
	si.AddText("DigestValue", "3q2+7wAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=")
	sig.Add(si)
	sig.AddText("SignatureValue", "c2lnbmF0dXJlLXZhbHVlLWJlbmNobWFyay1wYWRkaW5nLXNpZ25hdHVyZS12YWx1ZQ==")
	ki := xmldoc.New("KeyInfo", "")
	cr := xmldoc.New("Credential", "")
	cr.AddText("Subject", "urn:jxta:cbid-0123456789abcdef")
	cr.AddText("Key", "TUlHZk1BMEdDU3FHU0liM0RRRUJBUVVBQTRHTkFEQ0JpUUtCZ1FERGV4YW1wbGU=")
	ki.Add(cr)
	sig.Add(ki)
	doc.Add(sig)
	return doc
}

func BenchmarkCanonical(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		// Build + serialize every iteration: no memo can help.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doc := canonBenchTree()
			_ = doc.Canonical()
		}
	})
	b.Run("warm", func(b *testing.B) {
		// Repeated canonicalization of an unchanged document — the broker
		// serving the same advertisement to many peers.
		doc := canonBenchTree()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = doc.Canonical()
		}
	})
	b.Run("skip-signature", func(b *testing.B) {
		// The verification body serialization (document minus Signature),
		// which used to be Clone+RemoveChildren+Canonical.
		doc := canonBenchTree()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = doc.CanonicalSkip("Signature")
		}
	})
}

// --- P2: cold vs warm trusted verification ---

func BenchmarkVerifyTrusted(b *testing.B) {
	env := newEnv(b)
	trust, err := env.TrustStore()
	if err != nil {
		b.Fatal(err)
	}
	kp, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	id, err := keys.CBID(kp.Public())
	if err != nil {
		b.Fatal(err)
	}
	clientCred, err := env.Sec.IssueClientCredential(id, "bench-signer", kp.Public())
	if err != nil {
		b.Fatal(err)
	}
	doc, err := (&advert.Pipe{
		PipeID:   "urn:jxta:pipe-bench-verify",
		PipeType: advert.PipeUnicast,
		PeerID:   id,
		Group:    "bench",
	}).Document()
	if err != nil {
		b.Fatal(err)
	}
	if err := xdsig.Sign(doc, kp, clientCred, env.Sec.Credential()); err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	b.Run("cold", func(b *testing.B) {
		// The uncached path pays canonicalization + SHA-256 + three RSA
		// verifications (signature, two chain links) per call.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xdsig.VerifyTrusted(doc, trust, now); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		vc := xdsig.NewVerifyCache(trust, 0)
		if _, err := vc.VerifyTrusted(doc, now); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := vc.VerifyTrusted(doc, now); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- P3: secure fan-out, N=1/10/100 ---
//
// One round = verify every recipient's signed pipe advertisement
// (cached after the first encounter) and seal the message for the whole
// set. Since PR 2 a round is a single SealGroup: ONE header signature
// plus one cheap key wrap per recipient, instead of one Seal (and one
// signature) per recipient — the amortization the paper's §5 numbers
// say dominates fan-out cost. The benchmark asserts the amortization
// via the key pair's signature call counter.

func BenchmarkFanOutSecure(b *testing.B) {
	env := newEnv(b)
	trust, err := env.TrustStore()
	if err != nil {
		b.Fatal(err)
	}
	sender, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	senderID, err := keys.CBID(sender.Public())
	if err != nil {
		b.Fatal(err)
	}
	recvKP, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	recvID, err := keys.CBID(recvKP.Public())
	if err != nil {
		b.Fatal(err)
	}
	recvCred, err := env.Sec.IssueClientCredential(recvID, "bench-recv", recvKP.Public())
	if err != nil {
		b.Fatal(err)
	}
	body := []byte(benchPayload(1024))
	for _, n := range []int{1, 10, 100} {
		// One signed pipe advertisement per recipient, as a sender doing a
		// group fan-out would verify.
		docs := make([]*xmldoc.Element, n)
		for i := range docs {
			doc, err := (&advert.Pipe{
				PipeID:   fmt.Sprintf("urn:jxta:pipe-fan-%d", i),
				PipeType: advert.PipeUnicast,
				PeerID:   recvID,
				Group:    "bench",
			}).Document()
			if err != nil {
				b.Fatal(err)
			}
			if err := xdsig.Sign(doc, recvKP, recvCred, env.Sec.Credential()); err != nil {
				b.Fatal(err)
			}
			docs[i] = doc
		}
		now := time.Now()
		b.Run(fmt.Sprintf("recipients%d", n), func(b *testing.B) {
			vc := xdsig.NewVerifyCache(trust, 256)
			signsBefore := sender.SignCalls()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recipients := make([]*keys.PublicKey, len(docs))
				parallel.ForEach(runtime.GOMAXPROCS(0), len(docs), func(j int) {
					res, err := vc.VerifyTrusted(docs[j], now)
					if err != nil {
						b.Error(err)
						return
					}
					recipients[j] = res.Signer.Key
				})
				if b.Failed() {
					return
				}
				if _, err := core.SealGroup(sender, senderID, "bench", body, recipients); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// The round contract: exactly one header signature per round,
			// regardless of recipient count.
			if got, want := sender.SignCalls()-signsBefore, uint64(b.N); got != want {
				b.Fatalf("%d rounds cost %d signatures, want exactly %d (1 per round)", b.N, got, want)
			}
		})
	}
}

// --- A4: signed advertisement pipeline ---

func BenchmarkSignedAdvertisement(b *testing.B) {
	env := newEnv(b)
	trust, err := env.TrustStore()
	if err != nil {
		b.Fatal(err)
	}
	kp, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	id, err := keys.CBID(kp.Public())
	if err != nil {
		b.Fatal(err)
	}
	clientCred, err := env.Sec.IssueClientCredential(id, "bench-signer", kp.Public())
	if err != nil {
		b.Fatal(err)
	}
	brokerCred := env.Sec.Credential()
	pipeAdv := &advert.Pipe{
		PipeID:   "urn:jxta:pipe-bench",
		PipeType: advert.PipeUnicast,
		PeerID:   id,
		Group:    "bench",
	}
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc, err := pipeAdv.Document()
			if err != nil {
				b.Fatal(err)
			}
			if err := xdsig.Sign(doc, kp, clientCred, brokerCred); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc, err := pipeAdv.Document()
	if err != nil {
		b.Fatal(err)
	}
	if err := xdsig.Sign(doc, kp, clientCred, brokerCred); err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		now := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := xdsig.VerifyTrusted(doc, trust, now); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The broker's actual ingest unit of work: wire bytes → parse →
	// full trusted verification. "fastpath" parses with ParseCanonical
	// (memo-seeded, so the verification serializations are pointer
	// reads); "reference" is the pre-overhaul encoding/xml path.
	raw := append([]byte(nil), doc.Canonical()...)
	b.Run("receive-fastpath", func(b *testing.B) {
		now := time.Now()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parsed, err := xmldoc.ParseCanonical(raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xdsig.VerifyTrusted(parsed, trust, now); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("receive-reference", func(b *testing.B) {
		now := time.Now()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parsed, err := xmldoc.ParseBytes(raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xdsig.VerifyTrusted(parsed, trust, now); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- P4/P5: broker relay — wire bytes and store-and-forward delivery ---
//
// The relay turns group fan-out from "send the full O(N)-wrap wire to
// every member" (O(N²) bytes per round) into "upload once, deliver one
// O(log N)-proof slice per member" (O(N) bytes per round). P4 measures
// the byte economics (reported as custom metrics); P5 measures the
// broker-side work under churn: re-slice the uploaded round, route 30%
// of the slices through the offline queues, drain them on the presence
// flush.

func relayBenchRound(b *testing.B, n int) (*core.DetachedRound, []keys.PeerID) {
	b.Helper()
	sender, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	senderID, err := keys.CBID(sender.Public())
	if err != nil {
		b.Fatal(err)
	}
	pubs := make([]*keys.PublicKey, n)
	ids := make([]keys.PeerID, n)
	for i := 0; i < n; i++ {
		kp, err := keys.NewKeyPair()
		if err != nil {
			b.Fatal(err)
		}
		pubs[i] = kp.Public()
		if ids[i], err = keys.CBID(kp.Public()); err != nil {
			b.Fatal(err)
		}
	}
	d, err := core.SealGroupDetached(sender, senderID, "bench", []byte(benchPayload(1024)), pubs)
	if err != nil {
		b.Fatal(err)
	}
	return d, ids
}

func BenchmarkRelayWireBytes(b *testing.B) {
	for _, n := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("recipients%d", n), func(b *testing.B) {
			d, _ := relayBenchRound(b, n)
			upload := d.Wire()
			var slices [][]byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The relay's per-round byte surgery: parse the uploaded
				// wire, cut every recipient's slice.
				sliced, err := core.SliceRound(upload)
				if err != nil {
					b.Fatal(err)
				}
				slices = sliced.Slices()
			}
			b.StopTimer()
			total := 0
			for _, s := range slices {
				total += len(s)
			}
			// Relayed cost: one upload + one slice per recipient.
			b.ReportMetric(float64(len(upload)+total)/float64(n), "wireB/rcpt")
			// Client-side fan-out cost: every member gets the full wire.
			b.ReportMetric(float64(len(upload)), "fullwireB/rcpt")
		})
	}
}

// --- P6: receive-path parse and end-to-end slice open ---
//
// Every inbound wire funnels through one XML parse. P6 measures the
// cold parse of a signed-advertisement-shaped document on the fast path
// (xmldoc.ParseCanonical: zero-copy lexer + slab allocation + memo
// seeding) against the encoding/xml reference path, the memo-seeded
// parse→Canonical round (the verification serialization that the
// seeding turns into a pointer read), and the full receive cost of one
// relayed round slice (decrypt + parse + bindings + signature).

func BenchmarkParseCold(b *testing.B) {
	raw := append([]byte(nil), canonBenchTree().Canonical()...)
	b.Run("canonical", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := xmldoc.ParseCanonical(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encodingxml", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := xmldoc.ParseBytes(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParseCanonical(b *testing.B) {
	// Parse already-canonical input, then read the canonical bytes back —
	// the exact sequence the verification paths run. The memo seeding
	// makes the Canonical() call a pointer read returning the input
	// subslice; the benchmark asserts that, so a regression to
	// re-serialization fails loudly rather than just slowing down.
	raw := append([]byte(nil), canonBenchTree().Canonical()...)
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		doc, err := xmldoc.ParseCanonical(raw)
		if err != nil {
			b.Fatal(err)
		}
		got := doc.Canonical()
		if &got[0] != &raw[0] {
			b.Fatal("canonical memo not seeded from input")
		}
	}
}

func BenchmarkOpenSlice(b *testing.B) {
	// One recipient's full receive path for a 100-member relayed round:
	// unwrap the CEK, AEAD-open, parse the signed header (fast path,
	// memo-seeded), check body digest + Merkle slice binding, verify the
	// header signature over the seeded serialization.
	sender, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	senderID, err := keys.CBID(sender.Public())
	if err != nil {
		b.Fatal(err)
	}
	recv, err := keys.NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	recipients := make([]*keys.PublicKey, 100)
	for i := range recipients {
		recipients[i] = recv.Public()
	}
	d, err := core.SealGroupDetached(sender, senderID, "bench", []byte(benchPayload(1024)), recipients)
	if err != nil {
		b.Fatal(err)
	}
	wire := d.Slice(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := core.OpenSlice(recv, wire, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := o.VerifySignature(sender.Public()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelayDelivery(b *testing.B) {
	for _, n := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("recipients%d", n), func(b *testing.B) {
			d, ids := relayBenchRound(b, n)
			upload := d.Wire()
			nOffline := n * 30 / 100
			idx := make(map[keys.PeerID]int, n)
			for i, id := range ids {
				idx[id] = i
			}
			var churnedOnline atomic.Bool
			var delivered atomic.Uint64
			r, err := relay.New(relay.Config{Shards: 4, QueueCap: n + 1, TTL: time.Hour},
				func(id keys.PeerID) bool {
					return idx[id] >= nOffline || churnedOnline.Load()
				},
				func(it relay.Item) error {
					delivered.Add(1)
					return nil
				})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Churn phase: the first 30% of recipients are offline.
				churnedOnline.Store(false)
				sliced, err := core.SliceRound(upload)
				if err != nil {
					b.Fatal(err)
				}
				for j, s := range sliced.Slices() {
					r.Submit(relay.Item{To: ids[j], From: "sender", Group: "bench", Payload: s})
				}
				// They return; drain the queues before the next round.
				churnedOnline.Store(true)
				for j := 0; j < nOffline; j++ {
					r.Flush(ids[j])
				}
				for delivered.Load() < uint64((i+1)*n) {
					runtime.Gosched()
				}
			}
		})
	}
}

// BenchmarkRelayDrainDurable is BenchmarkRelayDelivery/recipients100 on
// a WAL-backed relay: every queued slice is appended to the crash-safe
// log before it waits, and acked as it drains, with appends staged and
// fsyncs batched on a 2ms flush interval. The delta against the
// in-memory run is the WAL's software tax — syscalls, locking and
// copies on the drain path — which bench_compare.sh holds under 2x.
// The log lives on tmpfs when available so the gate tracks the code,
// not the benchmark machine's disk: each round queues ~75KB of slice
// payloads, and on a virtualized CI disk (measured 151-527 MB/s
// fdatasync throughput run-to-run) raw bandwidth drowns out any
// software regression the gate exists to catch. The real-disk
// persistence tax is reported in PERF.md instead.
func BenchmarkRelayDrainDurable(b *testing.B) {
	const n = 100
	b.Run(fmt.Sprintf("recipients%d", n), func(b *testing.B) {
		d, ids := relayBenchRound(b, n)
		upload := d.Wire()
		nOffline := n * 30 / 100
		idx := make(map[keys.PeerID]int, n)
		for i, id := range ids {
			idx[id] = i
		}
		var churnedOnline atomic.Bool
		var delivered atomic.Uint64
		cfg := relay.Config{Shards: 4, QueueCap: n + 1, TTL: time.Hour}
		cfg.WAL.Dir = b.TempDir()
		if _, err := os.Stat("/dev/shm"); err == nil {
			dir, err := os.MkdirTemp("/dev/shm", "walbench-")
			if err == nil {
				b.Cleanup(func() { os.RemoveAll(dir) })
				cfg.WAL.Dir = dir
			}
		}
		cfg.WAL.SyncInterval = 2 * time.Millisecond
		r, err := relay.New(cfg,
			func(id keys.PeerID) bool {
				return idx[id] >= nOffline || churnedOnline.Load()
			},
			func(it relay.Item) error {
				delivered.Add(1)
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			churnedOnline.Store(false)
			sliced, err := core.SliceRound(upload)
			if err != nil {
				b.Fatal(err)
			}
			for j, s := range sliced.Slices() {
				r.Submit(relay.Item{To: ids[j], From: "sender", Group: "bench", Payload: s})
			}
			churnedOnline.Store(true)
			for j := 0; j < nOffline; j++ {
				r.Flush(ids[j])
			}
			for delivered.Load() < uint64((i+1)*n) {
				runtime.Gosched()
			}
		}
	})
}

// --- T1: telemetry instrument overhead ---

// BenchmarkTelemetryOverhead prices the metrics layer itself. The
// inline instruments (counter Inc, histogram Observe) are what hot
// paths pay per event — the gate holds them to single-digit
// nanoseconds and zero allocations, i.e. genuinely free next to the
// microsecond-scale paths they count. Snapshot is the pull-collector
// cost paid only when something scrapes /metrics, reported for scale.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		reg := telemetry.New()
		c := reg.Counter("bench_events_total", "benchmark instrument")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		reg := telemetry.New()
		h := reg.Histogram("bench_latency_ms", "benchmark instrument", telemetry.LatencyBucketsMS)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i % 400))
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		// A registry shaped like a real broker deployment: a few dozen
		// pull collectors plus inline instruments.
		reg := telemetry.New()
		var backing atomic.Uint64
		for i := 0; i < 30; i++ {
			reg.CounterFunc(fmt.Sprintf("bench_collector_%02d_total", i), "benchmark collector",
				func() float64 { return float64(backing.Load()) })
		}
		reg.Counter("bench_inline_total", "benchmark instrument")
		reg.Histogram("bench_inline_ms", "benchmark instrument", telemetry.LatencyBucketsMS)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			backing.Add(1)
			if s := reg.Snapshot(); len(s) == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
}

// BenchmarkTraceOverhead prices the span recorder at its three
// operating points. "unsampled" is the one that matters: it is what
// every instrumented operation pays when its trace lost the sampling
// coin flip — the budget is a Begin timestamp, the seeded hash compare
// and one atomic load, with ZERO heap allocations (gated absolutely in
// bench_compare.sh). "sampled" adds the ring write under a shard
// mutex; "read" is the /debug/traces scrape cost, which allocates by
// design (it builds a sorted copy) and is priced on wall time only.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("unsampled", func(b *testing.B) {
		rec := trace.New(trace.Config{SampleRate: 0, Seed: 42})
		id := rec.NewID()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := trace.Begin(id, trace.StageSend)
			rec.End(sp, trace.OutcomeOK)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		rec := trace.New(trace.Config{SampleRate: 1, Seed: 42, Shards: 4, ShardCap: 4096})
		id := rec.NewID()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := trace.Begin(id, trace.StageSend)
			rec.End(sp, trace.OutcomeOK)
		}
	})
	b.Run("read", func(b *testing.B) {
		rec := trace.New(trace.Config{SampleRate: 1, Seed: 42, Shards: 4, ShardCap: 1024})
		for i := 0; i < 4096; i++ {
			sp := trace.Begin(rec.NewID(), trace.StageSend)
			rec.End(sp, trace.OutcomeOK)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := rec.Snapshot(); len(s) == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
}

// BenchmarkAuditOverhead prices the tamper-evident journal at the point
// every security decision pays it: one Record call on the staged
// (flusher-synced) path. The budget is one length-prefixed encode into
// a reused stage buffer, one SHA-256 over the framed bytes to advance
// the chain head, and one ring slot — ZERO heap allocations, gated
// absolutely in bench_compare.sh, because offense/refusal hot paths
// must not buy attribution with GC pressure. "synced" is the
// fdatasync-per-append policy, reported on wall time only: that cost
// is the disk's, not the encoder's, and deployments choose it
// deliberately.
func BenchmarkAuditOverhead(b *testing.B) {
	event := audit.Event{
		Kind: audit.KindRateLimited, Peer: "urn:jxta:cbid-bench",
		Op: "publishAdv", Reason: "rate-limited", Trace: 0xfeed,
	}
	b.Run("append", func(b *testing.B) {
		j, err := audit.Open(audit.Options{
			Dir: b.TempDir(), SyncInterval: 50 * time.Millisecond,
			SegmentBytes: 1 << 30, CheckpointEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if j.Record(event) == 0 {
				b.Fatal("append failed")
			}
		}
	})
	b.Run("synced", func(b *testing.B) {
		j, err := audit.Open(audit.Options{
			Dir: b.TempDir(), SyncInterval: 0,
			SegmentBytes: 1 << 30, CheckpointEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if j.Record(event) == 0 {
				b.Fatal("append failed")
			}
		}
	})
}
