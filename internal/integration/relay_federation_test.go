// Federation hand-off end-to-end: a slice queued at one broker for an
// offline member must chase the member when it logs into a federation
// partner instead — delivered there, through the partner's relay and
// the full secure pipeline, rather than expiring in the origin's queue
// (or being refused as relay:skipped, the pre-hand-off behavior).
package integration_test

import (
	"context"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

func TestQueuedSliceFollowsPeerToPartnerBroker(t *testing.T) {
	net := simnet.NewNetwork(simnet.LinkProfile{})
	defer net.Close()

	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(8)
	db.Register("alice", "pw", "g")
	db.Register("bob", "pw", "g")
	trust, _ := dep.TrustStore()

	mkBroker := func(name string) *broker.Broker {
		kp, _ := keys.NewKeyPair()
		cred, err := dep.IssueBrokerCredential(kp.Public(), name, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		b, err := broker.New(broker.Config{
			Name: name, PeerID: cred.Subject, Net: net,
			DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
				return db.Authenticate(u, p)
			}),
			RequireSecureLogin: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		if _, err := core.EnableBrokerSecurity(b, core.BrokerConfig{
			KeyPair: kp, Credential: cred, Trust: trust, RequireSignedAdvs: true,
		}); err != nil {
			t.Fatal(err)
		}
		return b
	}
	brA, brB := mkBroker("origin-broker"), mkBroker("partner-broker")
	brA.Federate(brB.PeerID())
	brB.Federate(brA.PeerID())
	mkRelay := func(b *broker.Broker) *relay.Relay {
		r, err := core.EnableBrokerRelay(b, core.RelayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		return r
	}
	rlyA, rlyB := mkRelay(brA), mkRelay(brB)

	mkClient := func(name string) *core.SecureClient {
		cl, err := client.New(net, membership.NewPSE("", 0), name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		clTrust, _ := dep.TrustStore()
		sc, err := core.NewSecureClient(cl, clTrust)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	loginAt := func(sc *core.SecureClient, br *broker.Broker) {
		ctx := ctxT(t, 30*time.Second)
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatal(err)
		}
		if err := sc.SecureLogin(ctx, "pw"); err != nil {
			t.Fatal(err)
		}
	}
	alice, bob := mkClient("alice"), mkClient("bob")
	loginAt(alice, brA)
	loginAt(bob, brA)
	bobEvents := events.NewCollector(bob.Bus())

	// Bob leaves broker A; alice's round queues his slice there.
	if err := bob.Logout(ctxT(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	direct, queued, err := alice.SecureMsgPeerGroupRelay(ctxT(t, 30*time.Second), "g", "follow me")
	if err != nil {
		t.Fatal(err)
	}
	if direct != 0 || queued != 1 {
		t.Fatalf("direct=%d queued=%d, want 0/1", direct, queued)
	}
	if rlyA.QueuedTotal() != 1 {
		t.Fatalf("origin relay holds %d slices, want 1", rlyA.QueuedTotal())
	}

	// Bob resurfaces at broker B. The fedPeerUp reaching A re-registers
	// him as partner-resident and fires the presence event that drains
	// his queue — into a federation hand-off, not a local push.
	loginAt(bob, brB)
	e, ok := bobEvents.WaitFor(events.SecureMessage, 10*time.Second)
	if !ok {
		t.Fatalf("queued slice never followed bob to the partner broker (origin relay %+v, partner relay %+v, partner sees bob online=%v)",
			rlyA.Metrics(), rlyB.Metrics(), brB.PeerOnline(bob.PeerID()))
	}
	if string(e.Data) != "follow me" || e.Payload["authenticated"] != "true" {
		t.Fatalf("bob got %q (auth=%s)", e.Data, e.Payload["authenticated"])
	}

	waituntil.True(5*time.Second, func() bool { return rlyA.QueuedTotal() == 0 })
	if got := rlyA.QueuedTotal(); got != 0 {
		t.Fatalf("origin relay still holds %d slices", got)
	}
	if got := rlyA.Metrics().HandedOff; got != 1 {
		t.Fatalf("origin HandedOff = %d, want 1", got)
	}
	if got := rlyB.Metrics().DeliveredDirect; got != 1 {
		t.Fatalf("partner DeliveredDirect = %d, want 1", got)
	}

	// Exactly once: the hand-off must not also leave a duplicate behind.
	time.Sleep(150 * time.Millisecond)
	if n := len(bobEvents.OfType(events.SecureMessage)); n != 1 {
		t.Fatalf("bob saw %d copies of the handed-off slice", n)
	}
}
