// Package events implements the callback side of the JXTA-Overlay
// programming model: applications invoke Client Module primitives and
// react to events thrown by functions executed on message reception.
package events

import (
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/keys"
)

// Type names an event kind.
type Type string

// Event kinds emitted by the middleware. The secure primitives emit the
// Secure* and security-alert variants.
const (
	Connected        Type = "connected"
	Disconnected     Type = "disconnected"
	LoginOK          Type = "login-ok"
	LoginFailed      Type = "login-failed"
	BrokerVerified   Type = "broker-verified"
	BrokerRejected   Type = "broker-rejected"
	MessageReceived  Type = "message-received"
	SecureMessage    Type = "secure-message-received"
	PresenceUpdate   Type = "presence-update"
	GroupUpdated     Type = "group-updated"
	FileIndexUpdated Type = "file-index-updated"
	FileReceived     Type = "file-received"
	TaskCompleted    Type = "task-completed"
	SecurityAlert    Type = "security-alert"
	// RelayFlushed is emitted by the broker's store-and-forward relay
	// after draining a returning peer's queue; the "delivered" payload
	// attribute carries the item count.
	RelayFlushed Type = "relay-flushed"
	// Reconnected is emitted by the client resilience layer after an
	// automatic session resume (re-secureLogin, re-announce,
	// re-subscribe) completes; the "attempts" payload attribute
	// carries how many backoff-gated tries the resume took.
	Reconnected Type = "reconnected"
)

// Event is one notification. Payload carries small string attributes;
// Data carries an opaque body (e.g. message text).
type Event struct {
	Type    Type
	From    keys.PeerID
	Group   string
	Payload map[string]string
	Data    []byte
	Time    time.Time
}

// Attr returns a payload attribute or "".
func (e Event) Attr(key string) string { return e.Payload[key] }

// Handler consumes events. Handlers run synchronously on the emitting
// goroutine; long work should be dispatched by the application.
type Handler func(Event)

type subscription struct {
	id int64
	t  Type // "" = wildcard
	h  Handler
}

// Bus is a typed publish/subscribe dispatcher.
type Bus struct {
	mu   sync.RWMutex
	subs []subscription
	next atomic.Int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a handler for one event type. It returns an
// unsubscribe function.
func (b *Bus) Subscribe(t Type, h Handler) (cancel func()) {
	return b.add(t, h)
}

// SubscribeAll registers a wildcard handler receiving every event.
func (b *Bus) SubscribeAll(h Handler) (cancel func()) {
	return b.add("", h)
}

func (b *Bus) add(t Type, h Handler) func() {
	id := b.next.Add(1)
	b.mu.Lock()
	b.subs = append(b.subs, subscription{id: id, t: t, h: h})
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		for i, s := range b.subs {
			if s.id == id {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				return
			}
		}
	}
}

// Emit stamps and dispatches the event to matching handlers.
func (b *Bus) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if e.Payload == nil {
		e.Payload = map[string]string{}
	}
	b.mu.RLock()
	subs := make([]subscription, len(b.subs))
	copy(subs, b.subs)
	b.mu.RUnlock()
	for _, s := range subs {
		if s.t == "" || s.t == e.Type {
			s.h(e)
		}
	}
}

// Collector buffers events for tests and examples.
type Collector struct {
	mu     sync.Mutex
	events []Event
	waitCh chan struct{}
}

// NewCollector subscribes a collector to every event on the bus.
func NewCollector(b *Bus) *Collector {
	c := &Collector{waitCh: make(chan struct{}, 64)}
	b.SubscribeAll(func(e Event) {
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
		select {
		case c.waitCh <- struct{}{}:
		default:
		}
	})
	return c
}

// Events returns a snapshot of collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// OfType returns collected events of one type.
func (c *Collector) OfType(t Type) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// WaitFor blocks until an event of type t has been collected or the
// timeout elapses; it reports whether the event arrived.
func (c *Collector) WaitFor(t Type, timeout time.Duration) (Event, bool) {
	deadline := time.After(timeout)
	for {
		if evs := c.OfType(t); len(evs) > 0 {
			return evs[0], true
		}
		select {
		case <-c.waitCh:
		case <-deadline:
			if evs := c.OfType(t); len(evs) > 0 {
				return evs[0], true
			}
			return Event{}, false
		}
	}
}
