// Package xmldoc implements a small XML document model with a
// deterministic canonical serialization.
//
// JXTA represents every piece of metadata — advertisements, credentials,
// messages — as structured XML documents. The security extension signs
// those documents, which requires byte-for-byte reproducible output: the
// canonical form produced here sorts attributes by name, escapes text
// minimally and deterministically, and never emits insignificant
// whitespace. It is a self-contained subset in the spirit of W3C
// Exclusive XML Canonicalization, sufficient for the document shapes
// JXTA-Overlay exchanges (no namespaces, comments, or processing
// instructions survive canonicalization).
package xmldoc

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Attr is a single name="value" attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Element is a node in an XML document tree. Text and child elements are
// kept separately: JXTA documents are "element normal form" — an element
// carries either a text payload or child elements, not interleaved mixed
// content. Parsing concatenates any character data into Text.
//
// Canonical serializations are memoized per element (see canonical.go).
// The fields stay exported for reading and for building fresh trees, but
// once an element has been canonicalized it must only be changed through
// the mutator methods (Add, AddText, SetText, SetAttr, RemoveChildren):
// they drop the memoized bytes on the element and every ancestor. A
// direct field write after canonicalization leaves a stale memo behind.
type Element struct {
	Name     string
	Attrs    []Attr
	Text     string
	Children []*Element

	// parent backlinks let a mutation invalidate the memoized canonical
	// bytes of every enclosing element. An element has at most one parent;
	// attaching it to a second tree re-points the backlink.
	parent *Element
	// canon memoizes the element's canonical serialization. Atomic so
	// concurrent readers (Canonical/String on shared cached documents)
	// are race-free; mutating a tree concurrently with reads remains the
	// caller's responsibility, exactly as before memoization.
	canon atomic.Pointer[[]byte]
}

// invalidate drops the memoized canonical bytes on e and every ancestor.
func (e *Element) invalidate() {
	for p := e; p != nil; p = p.parent {
		p.canon.Store(nil)
	}
}

// New returns an element with the given name and text payload.
func New(name, text string) *Element {
	return &Element{Name: name, Text: text}
}

// NewTree returns an element with the given name and children.
func NewTree(name string, children ...*Element) *Element {
	e := &Element{Name: name}
	return e.Add(children...)
}

// Add appends children and returns the receiver for chaining. A child
// that already belongs to another tree is MOVED: it is detached from
// its old parent (whose memoized canonical bytes are invalidated), so
// an element always has exactly one parent and every future mutation of
// the child invalidates the one tree that actually contains it. Without
// the detach, the old tree would keep serving stale canonical bytes —
// fatal for signing input.
func (e *Element) Add(children ...*Element) *Element {
	for _, c := range children {
		if c.parent != nil && c.parent != e {
			c.parent.detach(c)
		}
		c.parent = e
	}
	e.Children = append(e.Children, children...)
	e.invalidate()
	return e
}

// detach removes c from e's children and invalidates e's chain.
func (e *Element) detach(c *Element) {
	for i, ch := range e.Children {
		if ch == c {
			e.Children = append(e.Children[:i], e.Children[i+1:]...)
			break
		}
	}
	e.invalidate()
}

// AddText appends a child element holding only text and returns the
// receiver for chaining.
func (e *Element) AddText(name, text string) *Element {
	return e.Add(New(name, text))
}

// SetText replaces the element's text payload. Like every mutator it
// invalidates the memoized canonical form up the tree, so it is the only
// correct way to change Text after an element has been canonicalized.
func (e *Element) SetText(text string) *Element {
	e.Text = text
	e.invalidate()
	return e
}

// SetAttr sets (or replaces) an attribute value.
func (e *Element) SetAttr(name, value string) *Element {
	defer e.invalidate()
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first direct child with the given name, or nil.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first direct child with the given
// name, or the empty string when no such child exists.
func (e *Element) ChildText(name string) string {
	if c := e.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// ChildrenNamed returns all direct children with the given name.
func (e *Element) ChildrenNamed(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// RemoveChildren removes every direct child with the given name and
// reports how many were removed.
func (e *Element) RemoveChildren(name string) int {
	kept := e.Children[:0]
	removed := 0
	for _, c := range e.Children {
		if c.Name == name {
			c.parent = nil
			removed++
			continue
		}
		kept = append(kept, c)
	}
	e.Children = kept
	e.invalidate()
	return removed
}

// Clone returns a deep copy of the element tree. The copy carries over
// any memoized canonical bytes (they describe an identical tree) but is
// otherwise independent: mutating either tree never affects the other.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	out := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		out.Attrs = make([]Attr, len(e.Attrs))
		copy(out.Attrs, e.Attrs)
	}
	for _, c := range e.Children {
		cc := c.Clone()
		cc.parent = out
		out.Children = append(out.Children, cc)
	}
	out.canon.Store(e.canon.Load())
	return out
}

// Equal reports whether two trees are structurally identical (same names,
// attributes, text, and child order).
func (e *Element) Equal(o *Element) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Name != o.Name || e.Text != o.Text || len(e.Attrs) != len(o.Attrs) || len(e.Children) != len(o.Children) {
		return false
	}
	ea, oa := sortedAttrs(e.Attrs), sortedAttrs(o.Attrs)
	for i := range ea {
		if ea[i] != oa[i] {
			return false
		}
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

func sortedAttrs(in []Attr) []Attr {
	out := make([]Attr, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the canonical form; handy for debugging and logs. It
// shares Canonical's memo, so repeated renderings cost one string
// conversion rather than a full serialization.
func (e *Element) String() string { return string(e.Canonical()) }

// Indented returns a pretty-printed rendering for human consumption. The
// output is NOT canonical and must never be used as signing input.
func (e *Element) Indented() string {
	return string(e.appendIndented(nil, 0))
}

func (e *Element) appendIndented(dst []byte, depth int) []byte {
	pad := strings.Repeat("  ", depth)
	dst = append(dst, pad...)
	dst = append(dst, '<')
	dst = append(dst, e.Name...)
	for _, a := range sortedAttrs(e.Attrs) {
		dst = appendAttr(dst, a)
	}
	if len(e.Children) == 0 && e.Text == "" {
		return append(dst, "/>\n"...)
	}
	dst = append(dst, '>')
	if len(e.Children) == 0 {
		dst = appendEscapedText(dst, e.Text)
		dst = append(dst, '<', '/')
		dst = append(dst, e.Name...)
		return append(dst, ">\n"...)
	}
	dst = append(dst, '\n')
	if e.Text != "" {
		dst = append(dst, pad...)
		dst = append(dst, "  "...)
		dst = appendEscapedText(dst, e.Text)
		dst = append(dst, '\n')
	}
	for _, c := range e.Children {
		dst = c.appendIndented(dst, depth+1)
	}
	dst = append(dst, pad...)
	dst = append(dst, '<', '/')
	dst = append(dst, e.Name...)
	return append(dst, ">\n"...)
}

// ErrEmptyDocument is returned by Parse when the input holds no element.
var ErrEmptyDocument = errors.New("xmldoc: empty document")

// Parse reads a single XML document from r into an Element tree.
// Namespaces are flattened (local names only), comments, directives and
// processing instructions are dropped, and character data inside an
// element is concatenated and trimmed of leading/trailing whitespace
// when the element also has child elements (pretty-printed input).
func Parse(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var stack []*Element
	var root *Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Element{Name: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				el.Attrs = append(el.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmldoc: multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				el.parent = parent
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldoc: unbalanced end element")
			}
			top := stack[len(stack)-1]
			if len(top.Children) > 0 {
				top.Text = strings.TrimSpace(top.Text)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, ErrEmptyDocument
	}
	if len(stack) != 0 {
		return nil, errors.New("xmldoc: unexpected EOF inside element")
	}
	return root, nil
}

// ParseBytes is Parse over a byte slice. It reads data in place (no
// whole-input copy); like Parse it rides encoding/xml and accepts
// arbitrary well-formed XML. Wire receive paths should prefer
// ParseCanonical, which parses the canonical subset those surfaces
// actually exchange several times faster.
func ParseBytes(data []byte) (*Element, error) {
	return Parse(bytes.NewReader(data))
}

// RoundTrip canonicalizes and re-parses the tree; it is used by tests to
// assert that canonicalization is a fixed point of Parse∘Canonical.
func RoundTrip(e *Element) (*Element, error) {
	return ParseBytes(e.Canonical())
}
