package core

import (
	"fmt"
	"testing"
	"time"
)

func TestReplayGuardAdmitsOnce(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	wire := []byte("envelope-bytes")
	now := time.Now()
	if err := g.Check(wire, now); err != nil {
		t.Fatalf("first Check: %v", err)
	}
	if err := g.Check(wire, now); err != ErrMessageReplayed {
		t.Fatalf("second Check = %v, want ErrMessageReplayed", err)
	}
	// A different message is admitted.
	if err := g.Check([]byte("other"), now); err != nil {
		t.Fatalf("different message: %v", err)
	}
}

func TestReplayGuardFreshness(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	base := time.Now()
	g.SetClock(func() time.Time { return base })
	if err := g.Check([]byte("old"), base.Add(-2*time.Minute)); err != ErrMessageStale {
		t.Fatalf("stale past = %v", err)
	}
	if err := g.Check([]byte("future"), base.Add(2*time.Minute)); err != ErrMessageStale {
		t.Fatalf("stale future = %v", err)
	}
	if err := g.Check([]byte("fresh"), base.Add(-30*time.Second)); err != nil {
		t.Fatalf("fresh = %v", err)
	}
}

func TestReplayGuardEvictsExpired(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	now := time.Now()
	g.SetClock(func() time.Time { return now })
	g.Check([]byte("a"), now)
	g.Check([]byte("b"), now)
	// Advance past the window; next Check sweeps expired entries.
	now = now.Add(2 * time.Minute)
	g.Check([]byte("c"), now)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (expired entries swept)", g.Len())
	}
}

func TestReplayGuardBoundsMemory(t *testing.T) {
	g := NewReplayGuard(time.Hour, 8)
	now := time.Now()
	g.SetClock(func() time.Time { return now })
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond)
		if err := g.Check([]byte(fmt.Sprintf("m%02d", i)), now); err != nil {
			t.Fatalf("Check %d: %v", i, err)
		}
	}
	if g.Len() > 8 {
		t.Fatalf("Len = %d, exceeds maxEntries", g.Len())
	}
}

func TestReplayGuardDefaults(t *testing.T) {
	g := NewReplayGuard(0, 0)
	if err := g.Check([]byte("x"), time.Now()); err != nil {
		t.Fatalf("defaulted guard rejected fresh message: %v", err)
	}
}
