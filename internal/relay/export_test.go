package relay

// ArmedRetries reports how many retry timers are currently armed —
// test-only visibility for the Close-cancels-retries regression test.
func (r *Relay) ArmedRetries() int {
	r.retryMu.Lock()
	defer r.retryMu.Unlock()
	return len(r.retryTimers)
}
