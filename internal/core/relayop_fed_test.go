package core_test

import (
	"context"
	"strconv"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

// TestRelayHandsOffFederationResidentRecipients: a group member logged
// in at a federation partner must NOT be queued for locally — its
// presence events (and therefore the queue drain) fire at its own
// broker, so a queue here could only expire. Instead of refusing the
// slice (the pre-hand-off behavior), the relay op forwards it to the
// partner broker that owns the recipient, whose own relay delivers it
// directly. Recipients with no session record anywhere are still
// skipped and counted — a shortfall is never silent.
func TestRelayHandsOffFederationResidentRecipients(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	defer net.Close()
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "math")
	db.Register("bob", "pw", "math")
	auth := broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
		return db.Authenticate(u, p)
	})
	mk := func(name string) *broker.Broker {
		b, err := broker.New(broker.Config{Name: name, PeerID: keys.LegacyPeerID(name), Net: net, DB: auth})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		return b
	}
	brA, brB := mk("fed-broker-a"), mk("fed-broker-b")
	brA.Federate(brB.PeerID())
	brB.Federate(brA.PeerID())
	rlyA, err := core.EnableBrokerRelay(brA, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rlyA.Close()
	rlyB, err := core.EnableBrokerRelay(brB, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rlyB.Close()

	login := func(alias string, br *broker.Broker) *client.Client {
		cl, err := client.New(net, membership.NewNone(), alias)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := cl.Connect(ctx, br.PeerID()); err != nil {
			t.Fatal(err)
		}
		if err := cl.Login(ctx, "pw"); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	alice := login("alice", brA)
	bob := login("bob", brB)

	// Broker A learns bob's session record through federation.
	deadline := time.Now().Add(5 * time.Second)
	for !brA.KnownMember(bob.PeerID(), "math") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !brA.KnownMember(bob.PeerID(), "math") {
		t.Fatal("broker A never learned bob through federation")
	}
	if brA.PeerResident(bob.PeerID()) {
		t.Fatal("federation-origin peer reported resident")
	}
	if !brA.PeerResident(alice.PeerID()) {
		t.Fatal("locally logged-in peer not resident")
	}
	if brA.PeerOrigin(bob.PeerID()) != brB.PeerID() {
		t.Fatalf("PeerOrigin(bob) = %q, want broker B", brA.PeerOrigin(bob.PeerID()))
	}

	// One sealed round addressed to bob (federation-resident) and a peer
	// the broker has no session record for. The wrap keys need not be
	// real recipient keys: the broker holds no keys and routes on
	// residency and roster facts alone — and every recipient must land
	// in exactly one counter.
	kp, err := keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.SealGroupDetached(kp, alice.PeerID(), "math", []byte("cross-broker"),
		[]*keys.PublicKey{kp.Public(), kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := alice.Call(ctx, endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpRelayRound).
		AddString(proto.ElemGroup, "math").
		AddString(proto.ElemRecipients, string(bob.PeerID())+",urn:jxta:nobody").
		Add(proto.ElemEnvelope, d.Wire()))
	if err != nil {
		t.Fatal(err)
	}
	count := func(elem string) int {
		v, _ := resp.GetString(elem)
		n, _ := strconv.Atoi(v)
		return n
	}
	direct, queued := count(proto.ElemRelayDirect), count(proto.ElemRelayQueued)
	handoff, skipped := count(proto.ElemRelayHandoff), count(proto.ElemRelaySkipped)
	if direct != 0 || queued != 0 || handoff != 1 || skipped != 1 {
		t.Fatalf("direct=%d queued=%d handoff=%d skipped=%d, want 0/0/1/1", direct, queued, handoff, skipped)
	}
	if got := rlyA.QueuedTotal(); got != 0 {
		t.Fatalf("origin relay queued %d slices for partner-resident recipients", got)
	}
	if got := rlyA.Metrics().HandedOff; got != 1 {
		t.Fatalf("HandedOff = %d, want 1", got)
	}
	// The partner's relay received the forwarded slice and, with bob
	// logged in there, pushed it directly.
	waitMetric := func(get func() uint64, want uint64, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for get() < want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := get(); got != want {
			t.Fatalf("%s = %d, want %d", what, got, want)
		}
	}
	waitMetric(func() uint64 { return rlyB.Metrics().DeliveredDirect }, 1, "partner DeliveredDirect")
}
