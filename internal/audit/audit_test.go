package audit

import (
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
)

// Shared signing fixture: one admin anchor and one broker credential,
// generated once — RSA keygen is the expensive part of every test here.
var (
	fixOnce  sync.Once
	fixErr   error
	fixKP    *keys.KeyPair
	fixChain []*cred.Credential
	fixTrust *cred.TrustStore
)

func signer(t testing.TB) (*keys.KeyPair, []*cred.Credential, *cred.TrustStore) {
	t.Helper()
	fixOnce.Do(func() {
		adminKP, err := keys.NewKeyPair()
		if err != nil {
			fixErr = err
			return
		}
		adm, err := cred.SelfSigned(adminKP, "admin", time.Hour)
		if err != nil {
			fixErr = err
			return
		}
		brKP, err := keys.NewKeyPair()
		if err != nil {
			fixErr = err
			return
		}
		brID, err := keys.CBID(brKP.Public())
		if err != nil {
			fixErr = err
			return
		}
		brCred, err := cred.Issue(adminKP, adm.Subject, brID, "broker-1", cred.RoleBroker, brKP.Public(), time.Hour)
		if err != nil {
			fixErr = err
			return
		}
		ts, err := cred.NewTrustStore(adm)
		if err != nil {
			fixErr = err
			return
		}
		fixKP, fixChain, fixTrust = brKP, []*cred.Credential{brCred}, ts
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixKP, fixChain, fixTrust
}

func ev(i int) Event {
	return Event{Kind: KindLogin, Peer: "urn:jxta:cbid-peer", Op: "secureLogin", Reason: "ok", Trace: uint64(i)}
}

func mustRecord(t testing.TB, j *Journal, e Event) uint64 {
	t.Helper()
	seq := j.Record(e)
	if seq == 0 {
		t.Fatalf("Record(%+v) returned 0 (journal failed: %+v)", e, j.Stats())
	}
	return seq
}
