// Attack demonstration: runs the paper's §2.3 threat analysis live.
// Every attack is executed twice — once against the original primitives
// (where it succeeds) and once against the secure extension (where it is
// detected and rejected).
//
//	go run ./examples/attacks
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Println("=== Threat 1: eavesdropping the login (§2.3) ===")
	if err := eavesdropDemo(ctx); err != nil {
		return err
	}
	fmt.Println("\n=== Threat 2: fake broker via redirected traffic (§2.3) ===")
	if err := fakeBrokerDemo(ctx); err != nil {
		return err
	}
	fmt.Println("\n=== Threat 3: advertisement forgery (§2.3) ===")
	return forgeryDemo(ctx)
}

// plainNetwork stands up the original middleware.
func plainNetwork() (*simnet.Network, *broker.Broker, *userdb.Store, error) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	db := userdb.NewStore()
	db.Register("alice", "alice-secret", "demo")
	db.Register("mallory", "mallory-pw", "demo")
	br, err := broker.New(broker.Config{
		Name: "broker-1", PeerID: keys.LegacyPeerID("broker-1"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		net.Close()
		return nil, nil, nil, err
	}
	return net, br, db, nil
}

// secureNetwork stands up the extended middleware.
func secureNetwork() (*simnet.Network, *broker.Broker, *core.Deployment, error) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		net.Close()
		return nil, nil, nil, err
	}
	db := userdb.NewStore()
	db.Register("alice", "alice-secret", "demo")
	db.Register("mallory", "mallory-pw", "demo")
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "broker-1", time.Hour)
	if err != nil {
		net.Close()
		return nil, nil, nil, err
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "broker-1", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		net.Close()
		return nil, nil, nil, err
	}
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	}); err != nil {
		net.Close()
		return nil, nil, nil, err
	}
	return net, br, dep, nil
}

func securePeer(net *simnet.Network, dep *core.Deployment, alias string) (*core.SecureClient, error) {
	cl, err := client.New(net, membership.NewPSE("", 0), alias)
	if err != nil {
		return nil, err
	}
	trust, err := dep.TrustStore()
	if err != nil {
		return nil, err
	}
	return core.NewSecureClient(cl, trust)
}

func eavesdropDemo(ctx context.Context) error {
	// Original primitives: the password crosses the wire in the clear.
	net, br, _, err := plainNetwork()
	if err != nil {
		return err
	}
	defer net.Close()
	defer br.Close()
	eve := attack.NewEavesdropper(net)
	alice, err := client.New(net, membership.NewNone(), "alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	if err := alice.Connect(ctx, br.PeerID()); err != nil {
		return err
	}
	if err := alice.Login(ctx, "alice-secret"); err != nil {
		return err
	}
	fmt.Printf("  plain login:  eve read the password off the wire: %v\n", eve.SawString("alice-secret"))

	// Secure extension: the login request is encrypted to PK_Br.
	snet, sbr, dep, err := secureNetwork()
	if err != nil {
		return err
	}
	defer snet.Close()
	defer sbr.Close()
	eve2 := attack.NewEavesdropper(snet)
	sAlice, err := securePeer(snet, dep, "alice")
	if err != nil {
		return err
	}
	defer sAlice.Close()
	if err := sAlice.SecureConnection(ctx, sbr.PeerID()); err != nil {
		return err
	}
	if err := sAlice.SecureLogin(ctx, "alice-secret"); err != nil {
		return err
	}
	fmt.Printf("  secure login: eve read the password off the wire: %v (frames captured: %d)\n",
		eve2.SawString("alice-secret"), eve2.FrameCount())
	return nil
}

func fakeBrokerDemo(ctx context.Context) error {
	// Original primitives: alice's traffic is redirected to an attacker
	// broker with the same well-known name; her password is harvested.
	net, br, _, err := plainNetwork()
	if err != nil {
		return err
	}
	defer net.Close()
	defer br.Close()
	harvested := make(chan [2]string, 1)
	fake, err := attack.NewFakeBroker(net, "broker-1", keys.LegacyPeerID("evil"), harvested)
	if err != nil {
		return err
	}
	defer fake.Close()
	alice, err := client.New(net, membership.NewNone(), "alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	if err := alice.Connect(ctx, fake.PeerID()); err != nil {
		return err
	}
	if err := alice.Login(ctx, "alice-secret"); err != nil {
		return err
	}
	creds := <-harvested
	fmt.Printf("  plain connect: fake broker harvested %q / %q\n", creds[0], creds[1])

	// Secure extension: secureConnection demands a credential issued by
	// the administrator and a signature over a fresh challenge.
	snet, sbr, dep, err := secureNetwork()
	if err != nil {
		return err
	}
	defer snet.Close()
	defer sbr.Close()
	fakeDep, err := core.NewDeployment("evil-admin", 0)
	if err != nil {
		return err
	}
	fkKP, _ := keys.NewKeyPair()
	fkCred, err := fakeDep.IssueBrokerCredential(fkKP.Public(), "broker-1", time.Hour)
	if err != nil {
		return err
	}
	fkTrust, _ := fakeDep.TrustStore()
	fakeSec, err := broker.New(broker.Config{
		Name: "broker-1", PeerID: fkCred.Subject, Net: snet,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return []string{"demo"}, nil
		}),
	})
	if err != nil {
		return err
	}
	defer fakeSec.Close()
	if _, err := core.EnableBrokerSecurity(fakeSec, core.BrokerConfig{
		KeyPair: fkKP, Credential: fkCred, Trust: fkTrust,
	}); err != nil {
		return err
	}
	sAlice, err := securePeer(snet, dep, "alice")
	if err != nil {
		return err
	}
	defer sAlice.Close()
	err = sAlice.SecureConnection(ctx, fakeSec.PeerID())
	fmt.Printf("  secureConnection to the fake broker rejected: %v\n", err != nil)
	return nil
}

func forgeryDemo(ctx context.Context) error {
	// Original primitives: mallory (a legitimate user) publishes a
	// presence advertisement claiming alice went offline; the broker
	// accepts and propagates it blindly.
	net, br, _, err := plainNetwork()
	if err != nil {
		return err
	}
	defer net.Close()
	defer br.Close()
	alice, err := client.New(net, membership.NewNone(), "alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	mallory, err := client.New(net, membership.NewNone(), "mallory")
	if err != nil {
		return err
	}
	defer mallory.Close()
	for _, c := range []*client.Client{alice, mallory} {
		if err := c.Connect(ctx, br.PeerID()); err != nil {
			return err
		}
	}
	if err := alice.Login(ctx, "alice-secret"); err != nil {
		return err
	}
	if err := mallory.Login(ctx, "mallory-pw"); err != nil {
		return err
	}
	forged := attack.ForgePresence(alice.PeerID(), "alice", "demo", "offline")
	err = mallory.PublishAdvDoc(ctx, forged)
	fmt.Printf("  plain broker accepted mallory's forged presence for alice: %v\n", err == nil)

	// Secure extension: advertisements must be signed by their owner.
	snet, sbr, dep, err := secureNetwork()
	if err != nil {
		return err
	}
	defer snet.Close()
	defer sbr.Close()
	sAlice, err := securePeer(snet, dep, "alice")
	if err != nil {
		return err
	}
	defer sAlice.Close()
	sMallory, err := securePeer(snet, dep, "mallory")
	if err != nil {
		return err
	}
	defer sMallory.Close()
	for _, p := range []*core.SecureClient{sAlice, sMallory} {
		if err := p.SecureConnection(ctx, sbr.PeerID()); err != nil {
			return err
		}
	}
	if err := sAlice.SecureLogin(ctx, "alice-secret"); err != nil {
		return err
	}
	if err := sMallory.SecureLogin(ctx, "mallory-pw"); err != nil {
		return err
	}
	forged2 := attack.ForgePresence(sAlice.PeerID(), "alice", "demo", "offline")
	err = sMallory.PublishAdvDoc(ctx, forged2)
	fmt.Printf("  secure broker rejected the forged presence: %v\n", err != nil)
	return nil
}
